//! Durability: write-ahead logging and snapshots.
//!
//! MySQL — the backend the original MCS ran on — survives restarts; an
//! in-memory stand-in needs an explicit persistence story to be a fair
//! substitute. `relstore` uses *logical* write-ahead logging: every write
//! statement (SQL text + parameters) is appended to a checksummed log
//! before it executes, and a *snapshot* serializes full table contents so
//! the log can be truncated. Recovery = load snapshot, replay log;
//! statements are deterministic, so replay converges to the pre-crash
//! state. Torn tails (a crash mid-append) are detected by the per-record
//! checksum and cleanly ignored.
//!
//! # Log format v2 (`RSWAL002`)
//!
//! The log opens with the 8-byte magic `RSWAL002`, followed by framed
//! records `[len: u32][fnv1a(payload): u64][payload]`. The payload's first
//! byte is a tag:
//!
//! * `0x00` **Stmt** — `[sql: str][n: u32][n values]`: one write statement.
//! * `0x01` **Begin** — `[txn_id: u64]`: opens a transaction group.
//! * `0x02` **Commit** — `[txn_id: u64]`: closes the open group.
//!
//! A committed transaction is journalled as `Begin, Stmt…, Commit` in one
//! buffered write with a single `fsync` after the Commit frame. Under
//! [`crate::db::Durability::Group`], *many* concurrent transactions'
//! groups share one physical write and one `fsync` (cross-transaction
//! group commit; see [`crate::group_commit`]) — each group stays
//! self-delimiting, so a torn tail discards only the group(s) whose
//! Commit frame is missing while earlier groups from the same physical
//! write survive. Recovery applies bare Stmt records immediately but buffers a
//! group's statements until its Commit frame: a torn or uncommitted tail —
//! including a crash anywhere between Begin and Commit — is discarded **as
//! a unit**, never statement-by-statement, so a multi-statement catalog
//! operation is atomic across crashes.
//!
//! Logs written before v2 carry no magic; they are detected, replayed
//! statement-wise (each record was an autocommitted statement), and
//! migrated to v2 by an immediate checkpoint on open.
//!
//! ```
//! use relstore::{Database, Value};
//! use relstore::wal::SyncPolicy;
//! let dir = std::env::temp_dir().join(format!("relstore-doc-{}", std::process::id()));
//! let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
//! db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, v VARCHAR(16))", &[]).unwrap();
//! db.execute("INSERT INTO t (v) VALUES (?)", &[Value::from("persisted")]).unwrap();
//! drop(db);
//! let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
//! let rs = db.query("SELECT v FROM t", &[]).unwrap();
//! assert_eq!(rs.rows[0][0], Value::from("persisted"));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::db::{Database, Durability};
use crate::error::{Error, Result};
use crate::index::IndexDef;
use crate::schema::{ColumnDef, TableSchema};
use crate::table::Table;
use crate::value::{Date, DateTime, Time, Value, ValueType};

/// How aggressively the log reaches stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every write statement (safest, slowest) — the
    /// equivalent of `innodb_flush_log_at_trx_commit = 1`.
    EveryWrite,
    /// Let the OS flush; data survives process crashes but not power
    /// loss (MyISAM-era reality).
    OsBuffered,
}

/// Observable WAL write activity — the sync-counting hook the crash and
/// concurrency tests (and `mcs-bench`) use to *prove* group commit
/// amortizes `fsync`s instead of asserting it. `syncs`/`group_commits`/
/// `batches` only ever increase (sample before/after a workload and
/// subtract); `acked_not_durable` and `max_epoch_lag` are gauges tracking
/// [`Durability::Async`](crate::db::Durability::Async) acknowledgement
/// debt.
#[derive(Debug, Default)]
pub struct WalStats {
    /// `sync_data` calls issued (one per physical commit under
    /// [`SyncPolicy::EveryWrite`]; zero under [`SyncPolicy::OsBuffered`]).
    pub syncs: AtomicU64,
    /// Transaction groups journalled (`Begin..Commit` units).
    pub group_commits: AtomicU64,
    /// Physical batch writes that carried at least one transaction group.
    /// `group_commits / batches` is the achieved amortization factor.
    pub batches: AtomicU64,
    /// Async commits acknowledged whose groups have not yet been flushed
    /// to the log — the durability debt a crash right now would lose.
    /// Rises on async enqueue, falls when the flusher (or any drain path)
    /// lands the group; a checkpoint zeroes it (the snapshot pays every
    /// outstanding debt at once).
    pub acked_not_durable: AtomicU64,
    /// Largest `commit_epoch − durable_epoch` gap observed at async
    /// enqueue time: how far acknowledgement has ever run ahead of
    /// durability on this database. High-water mark; never decreases.
    pub max_epoch_lag: AtomicU64,
    /// Row versions pushed into MVCC history (updates + deletes while the
    /// `mvcc` flag is on). Zero on barrier-engine databases.
    pub versions_created: AtomicU64,
    /// Row versions reclaimed by vacuum.
    pub versions_vacuumed: AtomicU64,
    /// Vacuum passes completed (manual calls and background-thread runs).
    pub vacuum_runs: AtomicU64,
}

impl WalStats {
    /// Snapshot of `syncs` (relaxed; for before/after deltas in tests).
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Snapshot of `group_commits`.
    pub fn group_commit_count(&self) -> u64 {
        self.group_commits.load(Ordering::Relaxed)
    }

    /// Snapshot of `batches`.
    pub fn batch_count(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Snapshot of the `acked_not_durable` gauge.
    pub fn acked_not_durable_count(&self) -> u64 {
        self.acked_not_durable.load(Ordering::Relaxed)
    }

    /// Snapshot of the `max_epoch_lag` high-water mark.
    pub fn max_epoch_lag_seen(&self) -> u64 {
        self.max_epoch_lag.load(Ordering::Relaxed)
    }

    /// Snapshot of `versions_created`.
    pub fn versions_created_count(&self) -> u64 {
        self.versions_created.load(Ordering::Relaxed)
    }

    /// Snapshot of `versions_vacuumed`.
    pub fn versions_vacuumed_count(&self) -> u64 {
        self.versions_vacuumed.load(Ordering::Relaxed)
    }

    /// Snapshot of `vacuum_runs`.
    pub fn vacuum_run_count(&self) -> u64 {
        self.vacuum_runs.load(Ordering::Relaxed)
    }
}

/// Log file name inside the durability directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside the durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.db";
/// Magic prefix identifying a v2 log file.
pub const WAL_MAGIC: &[u8; 8] = b"RSWAL002";

/// Record payload tags (first payload byte) in a v2 log.
const TAG_STMT: u8 = 0x00;
const TAG_BEGIN: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;

// ---------- binary value encoding ----------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn corrupt(what: &str) -> Error {
        Error::ExecError(format!("corrupt durability file: {what}"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Self::corrupt("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Self::corrupt("non-utf8 string"))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Append one value's binary encoding.
pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => out.push(if *b { 5 } else { 4 }),
        Value::Date(d) => {
            out.push(6);
            put_u64(out, d.days_from_epoch() as u64);
        }
        Value::Time(t) => {
            out.push(7);
            put_u32(out, t.seconds_from_midnight());
        }
        Value::DateTime(dt) => {
            out.push(8);
            put_u64(out, dt.seconds_from_epoch() as u64);
        }
    }
}

fn decode_value(c: &mut Cursor<'_>) -> Result<Value> {
    Ok(match c.u8()? {
        0 => Value::Null,
        1 => Value::Int(c.u64()? as i64),
        2 => Value::Float(f64::from_bits(c.u64()?)),
        3 => Value::Str(c.str()?.into()),
        4 => Value::Bool(false),
        5 => Value::Bool(true),
        6 => Value::Date(Date::from_days_from_epoch(c.u64()? as i64)),
        7 => {
            let s = c.u32()?;
            Value::Time(
                Time::new((s / 3600) as u8, ((s % 3600) / 60) as u8, (s % 60) as u8)
                    .map_err(|_| Cursor::corrupt("bad time"))?,
            )
        }
        8 => Value::DateTime(DateTime::from_seconds_from_epoch(c.u64()? as i64)),
        _ => return Err(Cursor::corrupt("unknown value tag")),
    })
}

fn type_code(t: ValueType) -> u8 {
    match t {
        ValueType::Int => 0,
        ValueType::Float => 1,
        ValueType::Str => 2,
        ValueType::Bool => 3,
        ValueType::Date => 4,
        ValueType::Time => 5,
        ValueType::DateTime => 6,
    }
}

fn type_from(c: u8) -> Result<ValueType> {
    Ok(match c {
        0 => ValueType::Int,
        1 => ValueType::Float,
        2 => ValueType::Str,
        3 => ValueType::Bool,
        4 => ValueType::Date,
        5 => ValueType::Time,
        6 => ValueType::DateTime,
        _ => return Err(Cursor::corrupt("unknown type code")),
    })
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------- the write-ahead log ----------

/// Appends write statements to the log file.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: BufWriter<File>,
    policy: SyncPolicy,
    stats: Arc<WalStats>,
    /// Set when an append, flush, or sync failed (ENOSPC, I/O error).
    /// After a failure the physical tail of the log is unknown — a torn
    /// frame may sit mid-file, and replay stops at the first corrupt
    /// frame — so appending anything more would silently discard every
    /// later commit at recovery. A poisoned writer rejects all further
    /// appends; `checkpoint()` rebuilds the log from scratch and attaches
    /// a fresh writer, which is the recovery path. `pub(crate)` so the
    /// poison-injection tests (here and in `epoch`/`group_commit`) can
    /// flip it without a real failing device.
    pub(crate) poisoned: bool,
}

impl WalWriter {
    fn open_append(path: &Path, policy: SyncPolicy, stats: Arc<WalStats>) -> Result<WalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::ExecError(format!("open wal: {e}")))?;
        let len = file.metadata().map_err(|e| Error::ExecError(format!("wal stat: {e}")))?.len();
        let mut writer = WalWriter { file: BufWriter::new(file), policy, stats, poisoned: false };
        if len == 0 {
            // a fresh (or just-truncated) log starts with the v2 magic
            writer
                .file
                .write_all(WAL_MAGIC)
                .and_then(|()| writer.file.flush())
                .map_err(|e| Error::ExecError(format!("wal magic: {e}")))?;
        }
        Ok(writer)
    }

    /// Frame `payload` as `[len][checksum][payload]` into `out`.
    fn frame(out: &mut Vec<u8>, payload: &[u8]) {
        put_u32(out, payload.len() as u32);
        put_u64(out, fnv1a(payload));
        out.extend_from_slice(payload);
    }

    fn stmt_payload(sql: &str, params: &[Value]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(sql.len() + 17);
        payload.push(TAG_STMT);
        put_str(&mut payload, sql);
        put_u32(&mut payload, params.len() as u32);
        for p in params {
            encode_value(p, &mut payload);
        }
        payload
    }

    fn marker_payload(tag: u8, txn_id: u64) -> Vec<u8> {
        let mut payload = Vec::with_capacity(9);
        payload.push(tag);
        put_u64(&mut payload, txn_id);
        payload
    }

    /// Fail fast if an earlier append left the log tail in an unknown
    /// state (see the `poisoned` field).
    fn usable(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::ExecError(
                "wal writer poisoned by an earlier append failure; \
                 checkpoint to rebuild the log"
                    .into(),
            ));
        }
        Ok(())
    }

    fn write_bytes(&mut self, rec: &[u8], what: &str) -> Result<()> {
        match self.file.write_all(rec) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = true;
                Err(Error::ExecError(format!("{what}: {e}")))
            }
        }
    }

    fn write_and_sync(&mut self, rec: &[u8]) -> Result<()> {
        self.write_bytes(rec, "wal append")?;
        self.flush_and_sync()
    }

    fn flush_and_sync(&mut self) -> Result<()> {
        if let Err(e) = self.file.flush() {
            self.poisoned = true;
            return Err(Error::ExecError(format!("wal flush: {e}")));
        }
        if self.policy == SyncPolicy::EveryWrite {
            self.stats.syncs.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = self.file.get_ref().sync_data() {
                self.poisoned = true;
                return Err(Error::ExecError(format!("wal sync: {e}")));
            }
        }
        Ok(())
    }

    /// Flush **and** sync regardless of [`SyncPolicy`] — the physical half
    /// of [`Database::sync_now`](crate::db::Database::sync_now), which must
    /// put already-acknowledged bytes on stable storage even under
    /// [`SyncPolicy::OsBuffered`]. Poisons the writer on failure like every
    /// other write path.
    pub(crate) fn force_sync(&mut self) -> Result<()> {
        self.usable()?;
        if let Err(e) = self.file.flush() {
            self.poisoned = true;
            return Err(Error::ExecError(format!("wal flush: {e}")));
        }
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.file.get_ref().sync_data() {
            self.poisoned = true;
            return Err(Error::ExecError(format!("wal sync: {e}")));
        }
        Ok(())
    }

    /// Append one autocommitted statement record.
    pub(crate) fn append(&mut self, sql: &str, params: &[Value]) -> Result<()> {
        self.usable()?;
        let payload = Self::stmt_payload(sql, params);
        let mut rec = Vec::with_capacity(payload.len() + 12);
        Self::frame(&mut rec, &payload);
        self.write_and_sync(&rec)
    }

    /// Encode a whole committed transaction as the framed byte run
    /// `Begin, Stmt…, Commit`. The run is self-delimiting: recovery applies
    /// it only once its Commit frame is intact, so any number of runs can
    /// share one physical write and still recover independently.
    pub(crate) fn encode_transaction(
        txn_id: u64,
        records: &[(String, Vec<Value>)],
    ) -> Vec<u8> {
        let mut rec = Vec::with_capacity(64 * (records.len() + 2));
        Self::frame(&mut rec, &Self::marker_payload(TAG_BEGIN, txn_id));
        for (sql, params) in records {
            Self::frame(&mut rec, &Self::stmt_payload(sql, params));
        }
        Self::frame(&mut rec, &Self::marker_payload(TAG_COMMIT, txn_id));
        rec
    }

    /// Append a whole committed transaction as `Begin, Stmt…, Commit` in a
    /// single buffered write with one sync after the Commit frame (group
    /// commit). A crash anywhere before the Commit frame reaches disk makes
    /// recovery discard the entire group.
    pub(crate) fn append_transaction(
        &mut self,
        txn_id: u64,
        records: &[(String, Vec<Value>)],
    ) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        self.usable()?;
        let rec = Self::encode_transaction(txn_id, records);
        self.stats.group_commits.fetch_add(1, Ordering::Relaxed);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.write_and_sync(&rec)
    }

    /// Buffer already-encoded transaction groups into the log, in
    /// iteration order, **without** flushing or syncing; the caller's
    /// next flush/sync makes them durable as part of its own physical
    /// write. Returns the number of groups written. This is the primitive
    /// behind both the leader's batched append and the direct-append
    /// path, which pushes every queued group ahead of its own record so
    /// log order can never contradict execution order
    /// (`Database::append_after_queue`).
    pub(crate) fn append_groups_unsynced<'a>(
        &mut self,
        groups: impl IntoIterator<Item = &'a [u8]>,
    ) -> Result<u64> {
        self.usable()?;
        let mut n = 0u64;
        for g in groups {
            self.write_bytes(g, "wal batch append")?;
            n += 1;
        }
        if n > 0 {
            self.stats.group_commits.fetch_add(n, Ordering::Relaxed);
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
        }
        Ok(n)
    }

    /// Append many already-encoded transaction groups in one buffered
    /// write followed by a **single** flush/sync — the physical half of
    /// group commit. Groups land in iteration order; each is framed so a
    /// torn tail discards only the transactions whose Commit frame did
    /// not make it, never an earlier group from the same write.
    pub(crate) fn append_batch<'a>(
        &mut self,
        groups: impl IntoIterator<Item = &'a [u8]>,
    ) -> Result<()> {
        if self.append_groups_unsynced(groups)? == 0 {
            return Ok(());
        }
        self.flush_and_sync()
    }
}

/// One decoded log record.
#[derive(Debug)]
enum WalEntry {
    Stmt(String, Vec<Value>),
    Begin(u64),
    Commit(u64),
}

/// Read all intact records from a log; a torn tail ends replay cleanly.
/// Returns the entries, whether the file used the pre-v2 format (no
/// magic, untagged statement payloads), and the byte length of the
/// intact prefix — everything past it is a torn or corrupt tail that
/// replay can never reach, so the opener truncates it away before
/// appending anything new behind it.
fn read_wal(path: &Path) -> Result<(Vec<WalEntry>, bool, u64)> {
    let mut out = Vec::new();
    let Ok(file) = File::open(path) else { return Ok((out, false, 0)) };
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    let legacy = match r.read_exact(&mut magic) {
        Ok(()) if &magic == WAL_MAGIC => false,
        Ok(()) => {
            // v1 log: those 8 bytes were record data — start over
            let file = File::open(path).map_err(|e| Error::ExecError(format!("wal: {e}")))?;
            r = BufReader::new(file);
            true
        }
        // shorter than a magic: an (empty or torn) v2 file has nothing to
        // replay; a v1 file this short holds no complete record either
        Err(_) => return Ok((out, false, 0)),
    };
    let mut valid_len: u64 = if legacy { 0 } else { WAL_MAGIC.len() as u64 };
    let mut header = [0u8; 12];
    loop {
        match r.read_exact(&mut header) {
            Ok(()) => {}
            Err(_) => break, // clean or torn end-of-log
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4")) as usize;
        let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8"));
        if len > 64 * 1024 * 1024 {
            break; // implausible length: torn record
        }
        let mut payload = vec![0u8; len];
        if r.read_exact(&mut payload).is_err() {
            break; // torn tail
        }
        if fnv1a(&payload) != checksum {
            break; // corrupt tail
        }
        let mut c = Cursor::new(&payload);
        if legacy {
            out.push(decode_stmt(&mut c)?);
        } else {
            match c.u8()? {
                TAG_STMT => out.push(decode_stmt(&mut c)?),
                TAG_BEGIN => out.push(WalEntry::Begin(c.u64()?)),
                TAG_COMMIT => out.push(WalEntry::Commit(c.u64()?)),
                _ => return Err(Cursor::corrupt("unknown wal record tag")),
            }
        }
        valid_len += (header.len() + len) as u64;
    }
    Ok((out, legacy, valid_len))
}

fn decode_stmt(c: &mut Cursor<'_>) -> Result<WalEntry> {
    let sql = c.str()?;
    let n = c.u32()? as usize;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(decode_value(c)?);
    }
    Ok(WalEntry::Stmt(sql, params))
}

// ---------- snapshots ----------

fn snapshot_bytes(db: &Database) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(b"RSSNAP01");
    let names = db.table_names();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        let handle = db.table(&name)?;
        let t = handle.read();
        // schema
        put_str(&mut out, &t.schema.name);
        put_u32(&mut out, t.schema.columns.len() as u32);
        for col in &t.schema.columns {
            put_str(&mut out, &col.name);
            out.push(type_code(col.ty));
            out.push(u8::from(col.nullable));
            put_u32(&mut out, col.max_len.map_or(u32::MAX, |m| m as u32));
            match &col.default {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    encode_value(v, &mut out);
                }
            }
            out.push(u8::from(col.auto_increment));
        }
        put_u32(&mut out, t.schema.primary_key.len() as u32);
        for &pk in &t.schema.primary_key {
            put_u32(&mut out, pk as u32);
        }
        // secondary indexes (the implicit pk index is rebuilt by Table::new)
        let pk_name = format!("pk_{}", t.schema.name);
        let secondary: Vec<&IndexDef> = t
            .indexes()
            .iter()
            .map(|ix| &ix.def)
            .filter(|d| d.name != pk_name)
            .collect();
        put_u32(&mut out, secondary.len() as u32);
        for d in secondary {
            put_str(&mut out, &d.name);
            out.push(u8::from(d.unique));
            put_u32(&mut out, d.columns.len() as u32);
            for &c in &d.columns {
                put_u32(&mut out, c as u32);
            }
        }
        // rows
        put_u32(&mut out, t.len() as u32);
        for (_, row) in t.scan() {
            for v in row {
                encode_value(v, &mut out);
            }
        }
    }
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    Ok(out)
}

fn load_snapshot(db: &Database, bytes: &[u8]) -> Result<()> {
    if bytes.len() < 16 || &bytes[..8] != b"RSSNAP01" {
        return Err(Cursor::corrupt("bad snapshot magic"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8"));
    if fnv1a(body) != stored {
        return Err(Cursor::corrupt("snapshot checksum mismatch"));
    }
    let mut c = Cursor::new(&body[8..]);
    let n_tables = c.u32()?;
    for _ in 0..n_tables {
        let name = c.str()?;
        let n_cols = c.u32()?;
        let mut cols = Vec::with_capacity(n_cols as usize);
        for _ in 0..n_cols {
            let cname = c.str()?;
            let ty = type_from(c.u8()?)?;
            let nullable = c.u8()? == 1;
            let max_len = match c.u32()? {
                u32::MAX => None,
                m => Some(m as usize),
            };
            let default = match c.u8()? {
                0 => None,
                _ => Some(decode_value(&mut c)?),
            };
            let auto_increment = c.u8()? == 1;
            cols.push(ColumnDef { name: cname, ty, nullable, max_len, default, auto_increment });
        }
        let n_pk = c.u32()?;
        let mut pk_cols = Vec::with_capacity(n_pk as usize);
        for _ in 0..n_pk {
            pk_cols.push(c.u32()? as usize);
        }
        let mut schema = TableSchema::new(&name, cols, &[])?;
        schema.primary_key = pk_cols;
        let arity = schema.arity();
        let mut table = Table::new(schema);
        let n_ix = c.u32()?;
        for _ in 0..n_ix {
            let ix_name = c.str()?;
            let unique = c.u8()? == 1;
            let n = c.u32()?;
            let mut columns = Vec::with_capacity(n as usize);
            for _ in 0..n {
                columns.push(c.u32()? as usize);
            }
            table.create_index(IndexDef { name: ix_name, unique, columns })?;
        }
        let n_rows = c.u32()?;
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(decode_value(&mut c)?);
            }
            table.insert(row)?;
        }
        db.add_table(table)?;
    }
    if !c.done() {
        return Err(Cursor::corrupt("trailing bytes in snapshot"));
    }
    Ok(())
}

impl Database {
    /// Open (or create) a durable database rooted at `dir`: load the
    /// snapshot if present, replay the write-ahead log, and attach a log
    /// writer so subsequent writes persist.
    pub fn open_durable(dir: impl AsRef<Path>, policy: SyncPolicy) -> Result<Arc<Database>> {
        Self::open_durable_with(dir, policy, Durability::Always)
    }

    /// [`Database::open_durable`] with an explicit commit [`Durability`]
    /// policy: `Durability::Always` syncs once per committed transaction;
    /// `Durability::Group { .. }` batches concurrent commits so many
    /// transactions share one sync (see [`crate::group_commit`]).
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        policy: SyncPolicy,
        durability: Durability,
    ) -> Result<Arc<Database>> {
        Self::open_durable_opts(dir, policy, durability, false)
    }

    /// [`Database::open_durable_with`] with the MVCC engine selectable:
    /// `mvcc = true` opens the database with version-chain snapshot reads
    /// ([`Database::new_mvcc`]). The on-disk formats are identical either
    /// way — replay rebuilds version state in memory (one epoch per
    /// replayed unit) and a post-replay vacuum collapses every chain back
    /// to single-version state, so a log written by one engine opens under
    /// the other.
    pub fn open_durable_opts(
        dir: impl AsRef<Path>,
        policy: SyncPolicy,
        durability: Durability,
        mvcc: bool,
    ) -> Result<Arc<Database>> {
        let dir: PathBuf = dir.as_ref().to_owned();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::ExecError(format!("create {dir:?}: {e}")))?;
        let db = Arc::new(if mvcc { Database::new_mvcc() } else { Database::new() });
        let snap_path = dir.join(SNAPSHOT_FILE);
        if let Ok(bytes) = std::fs::read(&snap_path) {
            load_snapshot(&db, &bytes)?;
        }
        let wal_path = dir.join(WAL_FILE);
        let (entries, legacy, valid_len) = read_wal(&wal_path)?;
        // A torn or corrupt tail ends replay for good: no future recovery
        // reads past it. Appending new commits *behind* it would durably
        // write data that is already unreachable, so cut the log back to
        // its intact prefix before attaching the writer.
        if let Ok(md) = std::fs::metadata(&wal_path) {
            if md.len() > valid_len {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .and_then(|f| f.set_len(valid_len))
                    .map_err(|e| Error::ExecError(format!("wal truncate torn tail: {e}")))?;
            }
        }
        // Statements inside a Begin..Commit group apply only once the
        // Commit frame is seen; a group cut off by the end of the log is
        // discarded as a unit. Bare statements apply immediately.
        let mut group: Option<(u64, Vec<(String, Vec<Value>)>)> = None;
        let apply = |sql: &str, params: &[Value]| {
            // Deterministic replay: a statement that failed originally
            // fails again; both outcomes reproduce the pre-crash state.
            let _ = db.execute(sql, params);
        };
        for entry in entries {
            match entry {
                WalEntry::Stmt(sql, params) => match &mut group {
                    Some((_, buf)) => buf.push((sql, params)),
                    None => apply(&sql, &params),
                },
                // Begin while a group is open means the previous group
                // never committed — drop it (defensive; the writer never
                // interleaves groups).
                WalEntry::Begin(id) => group = Some((id, Vec::new())),
                WalEntry::Commit(id) => {
                    // a Commit applies only the group its id opened;
                    // a stray or mismatched Commit discards nothing bare
                    match group.take() {
                        Some((begin_id, stmts)) if begin_id == id => {
                            for (sql, params) in stmts {
                                apply(&sql, &params);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        if mvcc {
            // Replay built version chains (one epoch per replayed unit);
            // nothing is pinned yet, so this collapses every chain back to
            // single-version state and clears dangling index entries.
            db.vacuum();
        }
        let writer = WalWriter::open_append(&dir.join(WAL_FILE), policy, db.wal_stats_arc())?;
        db.attach_wal(writer, dir);
        db.set_durability(durability);
        if legacy {
            // Migrate a pre-v2 log: checkpointing folds it into the
            // snapshot and rewrites an empty log with the v2 magic.
            db.checkpoint()?;
        }
        Ok(db)
    }

    /// Write a snapshot of the current state and truncate the log
    /// (checkpoint). Pauses logging for the duration. No-op on a
    /// non-durable database.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(dir) = self.durable_dir() else {
            return Err(Error::ExecError("checkpoint on a non-durable database".into()));
        };
        // Quiesce: take every table barrier exclusively so no statement or
        // transaction is mid-flight while we snapshot — otherwise the
        // snapshot could capture uncommitted (not-yet-journalled) state.
        let _quiesce = self.barriers().quiesce_guard(&self.table_names())?;
        // Drain the group-commit queue: a queued group's effects are
        // already in table state (and will be in the snapshot), so its
        // frames must land in the *old* log — after truncation they would
        // replay on top of the snapshot and double-apply.
        self.flush_commit_queue()?;
        // Hold the WAL lock across the whole checkpoint so no write can
        // slip between snapshot and truncation.
        let mut wal = self.wal_lock();
        let bytes = snapshot_bytes(self)?;
        let tmp = dir.join("snapshot.tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| Error::ExecError(format!("snapshot: {e}")))?;
        std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))
            .map_err(|e| Error::ExecError(format!("snapshot rename: {e}")))?;
        let policy = wal.as_ref().map_or(SyncPolicy::OsBuffered, |w| w.policy);
        std::fs::write(dir.join(WAL_FILE), b"")
            .map_err(|e| Error::ExecError(format!("wal truncate: {e}")))?;
        *wal = Some(WalWriter::open_append(&dir.join(WAL_FILE), policy, self.wal_stats_arc())?);
        // The snapshot captured the effects of every epoch allocated so
        // far (the quiesce guard means none is mid-allocation), so they
        // are all durable now — raise the watermark, clear any poison
        // failure, and zero the async-debt gauge. This is also how
        // `wait_for_epoch` callers stranded by a poisoned writer get
        // unstuck.
        self.epoch_gate().recover(self.commit_epoch());
        self.wal_stats().acked_not_durable.store(0, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "relstore-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn seed(db: &Database) {
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT,
                             name VARCHAR(32) NOT NULL, v INTEGER);
             CREATE UNIQUE INDEX t_name ON t (name);",
        )
        .unwrap();
        db.execute("INSERT INTO t (name, v) VALUES ('a', 1), ('b', 2)", &[]).unwrap();
    }

    #[test]
    fn reopen_replays_log() {
        let dir = tmpdir("replay");
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            seed(&db);
            db.execute("UPDATE t SET v = 9 WHERE name = 'a'", &[]).unwrap();
            db.execute("DELETE FROM t WHERE name = 'b'", &[]).unwrap();
        } // "crash": no checkpoint
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT name, v FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("a"), Value::Int(9)]]);
        // indexes rebuilt and functional
        assert!(db.execute("INSERT INTO t (name) VALUES ('a')", &[]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_and_recovers() {
        let dir = tmpdir("ckpt");
        {
            let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
            seed(&db);
            db.checkpoint().unwrap();
            let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
            assert_eq!(
                wal_len,
                WAL_MAGIC.len() as u64,
                "checkpoint must truncate the log down to the magic"
            );
            db.execute("INSERT INTO t (name, v) VALUES ('c', 3)", &[]).unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
        let rs = db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3)); // snapshot (2) + log (1)
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = tmpdir("torn");
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            seed(&db);
        }
        // simulate a crash mid-append: garbage half-record at the tail
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(dir.join(WAL_FILE)).unwrap();
            f.write_all(&[0x55; 7]).unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_value_types_survive_snapshot() {
        let dir = tmpdir("types");
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            db.execute_script(
                "CREATE TABLE v (i INTEGER, f DOUBLE, s TEXT, b BOOLEAN,
                                 d DATE, t TIME, dt DATETIME)",
            )
            .unwrap();
            db.execute(
                "INSERT INTO v VALUES (?, ?, ?, ?, DATE '2003-11-15', ?, ?)",
                &[
                    Value::Int(-5),
                    Value::Float(2.5),
                    Value::from("strings & <xml>"),
                    Value::Bool(true),
                    Value::parse_as("23:59:59", ValueType::Time).unwrap(),
                    Value::parse_as("2003-11-15 08:00:00", ValueType::DateTime).unwrap(),
                ],
            )
            .unwrap();
            db.execute("INSERT INTO v (i) VALUES (NULL)", &[]).unwrap();
            db.checkpoint().unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT * FROM v ORDER BY i DESC", &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Int(-5));
        assert_eq!(rs.rows[0][2], Value::from("strings & <xml>"));
        assert!(matches!(rs.rows[0][4], Value::Date(_)));
        assert!(matches!(rs.rows[0][6], Value::DateTime(_)));
        assert!(rs.rows[1].iter().all(Value::is_null));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_increment_continues_after_recovery() {
        let dir = tmpdir("autoinc");
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            seed(&db);
            db.execute("DELETE FROM t WHERE name = 'b'", &[]).unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let r = db.execute("INSERT INTO t (name) VALUES ('c')", &[]).unwrap();
        // id 2 was used by 'b' before deletion; replay of the original
        // inserts advances the counter past it
        assert_eq!(r.last_insert_id, Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_requires_durability() {
        let db = Database::new();
        assert!(db.checkpoint().is_err());
    }

    #[test]
    fn committed_group_survives_reopen() {
        let dir = tmpdir("group-commit");
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            seed(&db);
        }
        {
            let stats = Arc::new(WalStats::default());
            let mut w =
                WalWriter::open_append(&dir.join(WAL_FILE), SyncPolicy::EveryWrite, stats).unwrap();
            w.append_transaction(
                7,
                &[
                    ("INSERT INTO t (name, v) VALUES (?, ?)".into(), vec![Value::from("c"), Value::Int(3)]),
                    ("UPDATE t SET v = 30 WHERE name = 'c'".into(), vec![]),
                ],
            )
            .unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT v FROM t WHERE name = 'c'", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(30)]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_group_is_discarded_as_unit() {
        let dir = tmpdir("group-torn");
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            seed(&db);
        }
        // Begin + statements but no Commit frame — the crash happened
        // after some of the group's records reached disk.
        {
            use std::io::Write;
            let mut rec = Vec::new();
            WalWriter::frame(&mut rec, &WalWriter::marker_payload(TAG_BEGIN, 9));
            WalWriter::frame(
                &mut rec,
                &WalWriter::stmt_payload("INSERT INTO t (name, v) VALUES ('x', 8)", &[]),
            );
            WalWriter::frame(
                &mut rec,
                &WalWriter::stmt_payload("DELETE FROM t WHERE name = 'a'", &[]),
            );
            let mut f = OpenOptions::new().append(true).open(dir.join(WAL_FILE)).unwrap();
            f.write_all(&rec).unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        // neither the insert nor the delete applied: all-or-nothing
        let rs = db.query("SELECT name FROM t ORDER BY name", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("a")], vec![Value::from("b")]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_commit_frame_discards_group() {
        let dir = tmpdir("group-torn-commit");
        let wal_path = dir.join(WAL_FILE);
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            seed(&db);
        }
        let base = std::fs::metadata(&wal_path).unwrap().len();
        {
            let stats = Arc::new(WalStats::default());
            let mut w =
                WalWriter::open_append(&wal_path, SyncPolicy::EveryWrite, stats).unwrap();
            w.append_transaction(
                11,
                &[("INSERT INTO t (name, v) VALUES ('y', 9)".into(), vec![])],
            )
            .unwrap();
        }
        // cut into the trailing Commit frame (12-byte header + 9 payload)
        let full = std::fs::metadata(&wal_path).unwrap().len();
        assert!(full > base + 10);
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(full - 10).unwrap();
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT COUNT(*) FROM t WHERE name = 'y'", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_log_is_replayed_and_migrated() {
        let dir = tmpdir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write a v1 log: no magic, untagged statement payloads.
        let mut log = Vec::new();
        for sql in [
            "CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32))",
            "INSERT INTO t (name) VALUES ('v1-row')",
        ] {
            let mut payload = Vec::new();
            put_str(&mut payload, sql);
            put_u32(&mut payload, 0);
            WalWriter::frame(&mut log, &payload);
        }
        std::fs::write(dir.join(WAL_FILE), &log).unwrap();
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT name FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("v1-row")]]);
        // migration checkpointed: log now v2 (magic only), snapshot exists
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(&wal_bytes, WAL_MAGIC);
        assert!(dir.join(SNAPSHOT_FILE).exists());
        // and a further reopen still sees the data
        drop(db);
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_failure_poisons_the_writer() {
        // /dev/full yields a deterministic ENOSPC on flush (Linux);
        // elsewhere there is no cheap way to force the failure — skip.
        let Ok(file) = OpenOptions::new().write(true).open("/dev/full") else { return };
        let mut w = WalWriter {
            file: BufWriter::new(file),
            policy: SyncPolicy::EveryWrite,
            stats: Arc::new(WalStats::default()),
            poisoned: false,
        };
        assert!(w.append("INSERT INTO t (v) VALUES (1)", &[]).is_err());
        assert!(w.poisoned);
        // every further append must fail fast: the tail may hold a torn
        // frame, and replay stops at the first corrupt frame, so anything
        // appended after it would be silently dropped at recovery
        assert!(w.append("INSERT INTO t (v) VALUES (2)", &[]).is_err());
        assert!(w.append_transaction(7, &[("X".into(), vec![])]).is_err());
        assert!(w.append_batch([b"g".as_slice()]).is_err());
        assert_eq!(w.stats.sync_count(), 0, "must not sync after a failed flush");
    }

    #[test]
    fn checkpoint_recovers_a_poisoned_writer() {
        let dir = tmpdir("poison-ckpt");
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        seed(&db);
        db.wal_lock().as_mut().unwrap().poisoned = true;
        assert!(db.execute("INSERT INTO t (name) VALUES ('c')", &[]).is_err());
        // checkpoint folds table state into the snapshot and attaches a
        // fresh writer over an empty log — the documented recovery path
        db.checkpoint().unwrap();
        db.execute("INSERT INTO t (name) VALUES ('c')", &[]).unwrap();
        drop(db);
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A poisoned writer must fail pending `wait_for_epoch` callers
    /// promptly — an acked async commit whose group can no longer reach
    /// the log is a broken promise, and hanging forever would hide it.
    /// `checkpoint()` is the recovery path: it folds the (already
    /// visible) effects into the snapshot, which makes every allocated
    /// epoch durable and clears the failure.
    #[test]
    fn poisoned_writer_fails_pending_wait_for_epoch() {
        // /dev/full yields a deterministic ENOSPC on flush (Linux) — the
        // flusher's batched append will fail and poison the writer.
        let Ok(full) = OpenOptions::new().write(true).open("/dev/full") else { return };
        let dir = tmpdir("poison-epoch");
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            crate::db::Durability::Async {
                max_wait: std::time::Duration::from_millis(5),
                max_batch: 64,
            },
        )
        .unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        // Swap the log device for the full one; the async enqueue below
        // never touches the WAL, so the ack still succeeds.
        *db.wal_lock() = Some(WalWriter {
            file: BufWriter::new(full),
            policy: SyncPolicy::EveryWrite,
            stats: db.wal_stats_arc(),
            poisoned: false,
        });
        db.transaction(&[("t", crate::lock::Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
            Ok::<_, Error>(())
        })
        .unwrap();
        let epoch = Database::last_commit_epoch();
        assert!(epoch > 0);
        let r = db.wait_for_epoch(epoch);
        assert!(
            matches!(r, Err(Error::DurabilityLost(_))),
            "waiter must fail, not hang: {r:?}"
        );
        assert_eq!(db.wal_stats().acked_not_durable_count(), 1);
        // Recovery: the checkpoint snapshot carries the insert, so the
        // epoch's durability promise is kept after all.
        db.checkpoint().unwrap();
        db.wait_for_epoch(epoch).unwrap();
        assert_eq!(db.wal_stats().acked_not_durable_count(), 0);
        drop(db);
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_statements_replay_harmlessly() {
        let dir = tmpdir("failed");
        {
            let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
            seed(&db);
            // logged (write-ahead) but fails: duplicate key
            assert!(db.execute("INSERT INTO t (name) VALUES ('a')", &[]).is_err());
            db.execute("INSERT INTO t (name) VALUES ('c')", &[]).unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
        std::fs::remove_dir_all(&dir).ok();
    }
}
