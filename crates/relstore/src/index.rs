//! Secondary B-tree indexes.
//!
//! An index maps a tuple of column values (the key) to the set of row ids
//! having that key. Multi-column indexes support prefix-equality lookups
//! and range scans on the first unconstrained column, which is what the
//! planner exploits — the same access paths MySQL 4.1 offered the MCS
//! (paper §7: indexes on names, ids, and (name,id) pairs).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use crate::error::{Error, Result};
use crate::row::RowId;
use crate::value::Value;

/// An index key: values of the indexed columns, in index-column order.
/// Ordered by [`Value::index_cmp`] per component (total order incl. NULL).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Vec<Value>);

impl Eq for IndexKey {}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.index_cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Definition (name + indexed columns + uniqueness) of an index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Positions of the indexed columns in the table schema.
    pub columns: Vec<usize>,
    /// If true, no two rows may share a key (NULL components exempt,
    /// matching SQL UNIQUE semantics).
    pub unique: bool,
}

/// An in-memory B-tree index.
///
/// Posting sets are `BTreeSet`s so that insert **and remove** are
/// O(log n) regardless of how many rows share a key — a real B-tree keys
/// on (value, rowid), and the paper's near-flat add rate across database
/// sizes (Figure 5) depends on exactly this property.
#[derive(Debug, Clone)]
pub struct Index {
    /// Definition.
    pub def: IndexDef,
    tree: BTreeMap<IndexKey, BTreeSet<RowId>>,
    entries: usize,
}

impl Index {
    /// Create an empty index.
    pub fn new(def: IndexDef) -> Index {
        Index { def, tree: BTreeMap::new(), entries: 0 }
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey(self.def.columns.iter().map(|&c| row[c].clone()).collect())
    }

    /// Number of (key, row) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Would inserting `key` violate uniqueness?
    pub fn check_unique(&self, key: &IndexKey) -> Result<()> {
        if self.def.unique
            && !key.0.iter().any(Value::is_null)
            && self.tree.get(key).is_some_and(|v| !v.is_empty())
        {
            return Err(Error::UniqueViolation {
                index: self.def.name.clone(),
                key: format!(
                    "({})",
                    key.0.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
                ),
            });
        }
        Ok(())
    }

    /// Insert an entry. Caller checks uniqueness first (so that multi-index
    /// inserts can validate all indexes before mutating any).
    pub fn insert(&mut self, key: IndexKey, id: RowId) {
        if self.tree.entry(key).or_default().insert(id) {
            self.entries += 1;
        }
    }

    /// Remove an entry; returns true if it was present.
    pub fn remove(&mut self, key: &IndexKey, id: RowId) -> bool {
        if let Some(ids) = self.tree.get_mut(key) {
            if ids.remove(&id) {
                if ids.is_empty() {
                    self.tree.remove(key);
                }
                self.entries -= 1;
                return true;
            }
        }
        false
    }

    /// Row ids whose key equals `key` exactly (full-width key).
    pub fn get_eq(&self, key: &IndexKey) -> impl Iterator<Item = RowId> + '_ {
        self.tree.get(key).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Number of rows with exactly this key.
    pub fn count_eq(&self, key: &IndexKey) -> usize {
        self.tree.get(key).map_or(0, BTreeSet::len)
    }

    /// Number of distinct keys currently in the tree (planner statistic:
    /// for a composite index this is the distinct count of the column
    /// *tuple*, which per-column stats cannot provide).
    pub fn distinct_keys(&self) -> usize {
        self.tree.len()
    }

    /// Key-ordered groups whose key starts with `prefix`, optionally
    /// range-constrained on the column at position `prefix.len()`.
    ///
    /// This is the streaming core all prefix scans are built on: groups
    /// arrive in index-key order (so a caller whose sort keys are the
    /// index columns can stream ORDER BY), and the scan terminates as soon
    /// as a key leaves the prefix or exceeds the high bound — a consumer
    /// that stops early (LIMIT) never touches the rest of the tree.
    ///
    /// A prefix `[p]` with an open low bound starts at key `[p]` itself
    /// (shortest key sorts first thanks to the length tie-break in
    /// `IndexKey::cmp`). An `Excluded` low bound starts at the bound value
    /// and filters out exact matches below, because excluding it from the
    /// range start would also skip longer keys sharing the component.
    /// NULLs sort first and never satisfy a range predicate, so ranged
    /// scans skip them.
    pub fn iter_prefix_groups(
        &self,
        prefix: Vec<Value>,
        low: Bound<Value>,
        high: Bound<Value>,
    ) -> impl Iterator<Item = (&IndexKey, &BTreeSet<RowId>)> {
        let lo_key: Bound<IndexKey> = match &low {
            Bound::Unbounded => Bound::Included(IndexKey(prefix.clone())),
            Bound::Included(v) | Bound::Excluded(v) => {
                let mut k = prefix.clone();
                k.push(v.clone());
                Bound::Included(IndexKey(k))
            }
        };
        let plen = prefix.len();
        let ranged = !matches!((&low, &high), (Bound::Unbounded, Bound::Unbounded));
        self.tree
            .range((lo_key, Bound::Unbounded))
            .take_while(move |(key, _)| {
                // Stop once the key no longer begins with the prefix, or
                // its next component exceeds the high bound.
                key.0.len() >= plen
                    && key.0[..plen]
                        .iter()
                        .zip(&prefix)
                        .all(|(a, b)| a.index_cmp(b) == Ordering::Equal)
                    && match (key.0.get(plen), &high) {
                        (Some(next), Bound::Included(hi)) => {
                            next.index_cmp(hi) != Ordering::Greater
                        }
                        (Some(next), Bound::Excluded(hi)) => next.index_cmp(hi) == Ordering::Less,
                        _ => true,
                    }
            })
            .filter(move |(key, _)| match key.0.get(plen) {
                Some(next) => {
                    if let Bound::Excluded(lo) = &low {
                        if next.index_cmp(lo) == Ordering::Equal {
                            return false;
                        }
                    }
                    !(next.is_null() && ranged)
                }
                // Key is exactly the prefix: included only when no range
                // on the next column was requested.
                None => !ranged,
            })
    }

    /// Streaming variant of [`Index::scan_prefix_range`]: row ids in
    /// index-key order, produced lazily.
    pub fn iter_prefix_range(
        &self,
        prefix: Vec<Value>,
        low: Bound<Value>,
        high: Bound<Value>,
    ) -> impl Iterator<Item = RowId> + '_ {
        self.iter_prefix_groups(prefix, low, high).flat_map(|(_, ids)| ids.iter().copied())
    }

    /// Count the entries a prefix/range scan would visit, giving up once
    /// `cap` is reached — the planner's "index dive". Returns the count
    /// and whether it was truncated by the cap.
    pub fn count_prefix_range(
        &self,
        prefix: &[Value],
        low: Bound<&Value>,
        high: Bound<&Value>,
        cap: usize,
    ) -> (usize, bool) {
        let mut n = 0usize;
        for (_, ids) in self.iter_prefix_groups(prefix.to_vec(), low.cloned(), high.cloned()) {
            n += ids.len();
            if n >= cap {
                return (n, true);
            }
        }
        (n, false)
    }

    /// Row ids whose key starts with `prefix` (fewer columns than the
    /// index width), optionally range-constrained on the next column.
    ///
    /// `low`/`high` bound the column at position `prefix.len()`.
    pub fn scan_prefix_range(
        &self,
        prefix: &[Value],
        low: Bound<&Value>,
        high: Bound<&Value>,
        out: &mut Vec<RowId>,
    ) {
        out.extend(self.iter_prefix_range(prefix.to_vec(), low.cloned(), high.cloned()));
    }

    /// Iterate all (key, ids) pairs in key order (used by ORDER BY
    /// optimization and integrity checks).
    pub fn iter(&self) -> impl Iterator<Item = (&IndexKey, &BTreeSet<RowId>)> {
        self.tree.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vs: &[i64]) -> IndexKey {
        IndexKey(vs.iter().map(|&v| Value::Int(v)).collect())
    }

    fn idx2() -> Index {
        // two-column index
        let mut ix = Index::new(IndexDef {
            name: "ix".into(),
            columns: vec![0, 1],
            unique: false,
        });
        for (a, b, id) in [(1, 10, 1), (1, 20, 2), (1, 30, 3), (2, 10, 4), (2, 15, 5)] {
            ix.insert(key(&[a, b]), RowId(id));
        }
        ix
    }

    #[test]
    fn eq_lookup() {
        let ix = idx2();
        assert_eq!(ix.get_eq(&key(&[1, 20])).collect::<Vec<_>>(), vec![RowId(2)]);
        assert_eq!(ix.count_eq(&key(&[9, 9])), 0);
        assert_eq!(ix.len(), 5);
    }

    #[test]
    fn prefix_scan_unbounded() {
        let ix = idx2();
        let mut out = vec![];
        ix.scan_prefix_range(&[Value::Int(1)], Bound::Unbounded, Bound::Unbounded, &mut out);
        out.sort();
        assert_eq!(out, vec![RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn prefix_scan_range() {
        let ix = idx2();
        let mut out = vec![];
        ix.scan_prefix_range(
            &[Value::Int(1)],
            Bound::Included(&Value::Int(15)),
            Bound::Excluded(&Value::Int(30)),
            &mut out,
        );
        assert_eq!(out, vec![RowId(2)]);
    }

    #[test]
    fn empty_prefix_is_full_range_scan() {
        let ix = idx2();
        let mut out = vec![];
        ix.scan_prefix_range(&[], Bound::Included(&Value::Int(2)), Bound::Unbounded, &mut out);
        out.sort();
        assert_eq!(out, vec![RowId(4), RowId(5)]);
    }

    #[test]
    fn iter_prefix_range_streams_in_key_order() {
        let ix = idx2();
        let got: Vec<RowId> = ix
            .iter_prefix_range(vec![Value::Int(1)], Bound::Unbounded, Bound::Unbounded)
            .collect();
        assert_eq!(got, vec![RowId(1), RowId(2), RowId(3)]);
        // Early termination: taking one element must not need the rest.
        let first = ix
            .iter_prefix_range(vec![], Bound::Unbounded, Bound::Unbounded)
            .next();
        assert_eq!(first, Some(RowId(1)));
    }

    #[test]
    fn count_prefix_range_caps_the_dive() {
        let ix = idx2();
        let all = ix.count_prefix_range(&[Value::Int(1)], Bound::Unbounded, Bound::Unbounded, 100);
        assert_eq!(all, (3, false));
        let capped = ix.count_prefix_range(&[Value::Int(1)], Bound::Unbounded, Bound::Unbounded, 2);
        assert_eq!(capped, (2, true));
        assert_eq!(ix.distinct_keys(), 5);
    }

    #[test]
    fn remove_entry() {
        let mut ix = idx2();
        assert!(ix.remove(&key(&[1, 20]), RowId(2)));
        assert!(!ix.remove(&key(&[1, 20]), RowId(2)));
        assert_eq!(ix.count_eq(&key(&[1, 20])), 0);
        assert_eq!(ix.len(), 4);
    }

    #[test]
    fn unique_violation() {
        let mut ix = Index::new(IndexDef {
            name: "u".into(),
            columns: vec![0],
            unique: true,
        });
        ix.insert(key(&[7]), RowId(1));
        assert!(ix.check_unique(&key(&[7])).is_err());
        assert!(ix.check_unique(&key(&[8])).is_ok());
        // NULL keys are exempt from uniqueness
        let nk = IndexKey(vec![Value::Null]);
        ix.insert(nk.clone(), RowId(2));
        assert!(ix.check_unique(&nk).is_ok());
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let mut ix = Index::new(IndexDef {
            name: "d".into(),
            columns: vec![0],
            unique: false,
        });
        ix.insert(key(&[1]), RowId(1));
        ix.insert(key(&[1]), RowId(2));
        let got: Vec<RowId> = ix.get_eq(&key(&[1])).collect();
        assert_eq!(got, vec![RowId(1), RowId(2)]);
    }
}
