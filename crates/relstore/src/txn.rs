//! Statement-atomic transactions with undo logs.
//!
//! MySQL 4.1's default MyISAM tables — what the MCS prototype ran on —
//! were non-transactional: each statement was atomic, but multi-statement
//! transactions had no isolation. We reproduce that model: a [`UndoLog`]
//! records inverse operations so a session can ROLLBACK a batch (our small
//! improvement over MyISAM, needed by the catalog's multi-table creates),
//! while isolation remains per-statement via table-level locking.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::Result;
use crate::row::{Row, RowId};
use crate::table::Table;

/// Inverse of one applied write.
#[derive(Debug)]
pub(crate) enum UndoOp {
    /// The statement inserted this row; undo deletes it.
    UndoInsert(RowId),
    /// The statement deleted this row; undo re-inserts it at the same id.
    UndoDelete(RowId, Row),
    /// The statement updated this row; undo restores the old values.
    UndoUpdate(RowId, Row),
}

/// Undo log for an open transaction.
#[derive(Debug, Default)]
pub struct UndoLog {
    entries: Vec<(Arc<RwLock<Table>>, UndoOp)>,
}

impl UndoLog {
    /// Record an inverse operation.
    pub(crate) fn push(&mut self, table: Arc<RwLock<Table>>, op: UndoOp) {
        self.entries.push((table, op));
    }

    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lowercased names of the tables this log will mutate on rollback,
    /// deduped (for write-version bumps after the undo is applied).
    pub(crate) fn touched_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .iter()
            .map(|(t, _)| t.read().schema.name.to_ascii_lowercase())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Apply all inverse operations, newest first. Errors are collected
    /// rather than aborting, so a partially-conflicting rollback restores
    /// as much as possible (conflicts can only occur if another session
    /// wrote the same rows meanwhile, which the catalog never does).
    pub(crate) fn rollback(self) -> Result<()> {
        let mut first_err = None;
        for (table, op) in self.entries.into_iter().rev() {
            let mut t = table.write();
            let r = match op {
                UndoOp::UndoInsert(id) => t.rollback_insert(id),
                UndoOp::UndoDelete(id, row) => t.rollback_delete(id, row),
                UndoOp::UndoUpdate(id, row) => t.rollback_update(id, row),
            };
            if let Err(e) = r {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}
