//! Error types for the storage engine.

use std::fmt;

/// All errors produced by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name.
    NoSuchTable(String),
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// No index with this name.
    NoSuchIndex(String),
    /// No column with this name in the referenced table.
    NoSuchColumn(String),
    /// A value's type did not match the column type.
    TypeMismatch {
        /// Column (or expression position) that was being assigned or compared.
        column: String,
        /// Type required by the schema.
        expected: crate::value::ValueType,
        /// Type of the offending value.
        got: crate::value::ValueType,
    },
    /// NULL assigned to a NOT NULL column.
    NullViolation(String),
    /// A UNIQUE or PRIMARY KEY constraint was violated.
    UniqueViolation {
        /// Index whose uniqueness was violated.
        index: String,
        /// Rendered key that collided.
        key: String,
    },
    /// Row referenced by id does not exist (stale handle).
    NoSuchRow(u64),
    /// A VARCHAR(n) length limit was exceeded.
    StringTooLong {
        /// Column with the limit.
        column: String,
        /// Declared maximum.
        max: usize,
        /// Actual length.
        got: usize,
    },
    /// SQL lexing failed.
    LexError {
        /// Byte offset in the statement text.
        at: usize,
        /// Human-readable description.
        msg: String,
    },
    /// SQL parsing failed.
    ParseError {
        /// Approximate token position.
        at: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Statement was syntactically valid but cannot be executed.
    ExecError(String),
    /// Expression evaluation failed (e.g. type error in a WHERE clause).
    EvalError(String),
    /// Wrong number of `?` parameters supplied to a statement.
    ParamCount {
        /// Placeholders in the statement.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value literal could not be parsed (bad date, malformed number...).
    BadLiteral(String),
    /// Operation requires an active transaction, or nesting was attempted.
    TxnState(String),
    /// An asynchronously-acknowledged commit can no longer become durable:
    /// the WAL writer failed (and poisoned itself) after the commit was
    /// acknowledged but before its group reached stable storage. Surfaced
    /// by [`crate::Database::wait_for_epoch`] / [`crate::Database::sync_now`]
    /// instead of hanging; a `checkpoint()` rebuilds the log and clears the
    /// condition (see DESIGN.md §7.2).
    DurabilityLost(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TableExists(t) => write!(f, "table `{t}` already exists"),
            Error::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            Error::IndexExists(i) => write!(f, "index `{i}` already exists"),
            Error::NoSuchIndex(i) => write!(f, "no such index `{i}`"),
            Error::NoSuchColumn(c) => write!(f, "no such column `{c}`"),
            Error::TypeMismatch { column, expected, got } => {
                write!(f, "type mismatch for `{column}`: expected {expected}, got {got}")
            }
            Error::NullViolation(c) => write!(f, "column `{c}` may not be NULL"),
            Error::UniqueViolation { index, key } => {
                write!(f, "duplicate key {key} for unique index `{index}`")
            }
            Error::NoSuchRow(id) => write!(f, "no row with id {id}"),
            Error::StringTooLong { column, max, got } => {
                write!(f, "value too long for `{column}`: max {max}, got {got}")
            }
            Error::LexError { at, msg } => write!(f, "lex error at byte {at}: {msg}"),
            Error::ParseError { at, msg } => write!(f, "parse error near token {at}: {msg}"),
            Error::ExecError(m) => write!(f, "execution error: {m}"),
            Error::EvalError(m) => write!(f, "evaluation error: {m}"),
            Error::ParamCount { expected, got } => {
                write!(f, "statement takes {expected} parameters, {got} supplied")
            }
            Error::BadLiteral(m) => write!(f, "bad literal: {m}"),
            Error::TxnState(m) => write!(f, "transaction error: {m}"),
            Error::DurabilityLost(m) => write!(f, "durability lost: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;
