//! Expression AST, name binding, and evaluation.
//!
//! Expressions arrive from the SQL parser (or are built programmatically),
//! referring to columns by name. Before execution they are *bound* against
//! the schemas in scope, producing a [`BoundExpr`] whose column references
//! are slot offsets into the executor's row buffer — the hot evaluation
//! path does no string lookups.

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::TableSchema;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Unbound expression, as produced by the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally table-qualified (`t.c`).
    Column {
        /// Table qualifier, if written.
        table: Option<String>,
        /// Column name.
        column: String,
    },
    /// Literal value.
    Literal(Value),
    /// `?` placeholder, by position (0-based).
    Param(usize),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `a LIKE pattern` (`%` any run, `_` any single char).
    Like(Box<Expr>, Box<Expr>),
    /// `a IS NULL` (`negated` for IS NOT NULL).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `a IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Expr>),
}

impl Expr {
    /// Convenience: `col = literal`.
    pub fn col_eq(column: &str, v: impl Into<Value>) -> Expr {
        Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column { table: None, column: column.to_owned() }),
            Box::new(Expr::Literal(v.into())),
        )
    }

    /// Convenience: unqualified column reference.
    pub fn col(column: &str) -> Expr {
        Expr::Column { table: None, column: column.to_owned() }
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience: conjunction of a list (empty list means TRUE, i.e. `None`).
    pub fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
        let mut acc = exprs.pop()?;
        while let Some(e) = exprs.pop() {
            acc = Expr::And(Box::new(e), Box::new(acc));
        }
        Some(acc)
    }

    /// Count `?` placeholders in this expression.
    pub fn param_count(&self) -> usize {
        fn walk(e: &Expr, max: &mut usize) {
            match e {
                Expr::Param(i) => *max = (*max).max(i + 1),
                Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Like(a, b) => {
                    walk(a, max);
                    walk(b, max);
                }
                Expr::Not(a) | Expr::IsNull { expr: a, .. } => walk(a, max),
                Expr::InList(a, list) => {
                    walk(a, max);
                    for e in list {
                        walk(e, max);
                    }
                }
                Expr::Column { .. } | Expr::Literal(_) => {}
            }
        }
        let mut n = 0;
        walk(self, &mut n);
        n
    }
}

/// One table in scope during binding: its alias/name and where its columns
/// start in the executor's concatenated row buffer.
#[derive(Debug, Clone)]
pub struct ScopeEntry<'a> {
    /// Name the query uses for this table (alias, or the table name).
    pub alias: String,
    /// Schema of the underlying table.
    pub schema: &'a TableSchema,
    /// Offset of this table's first column in the row buffer.
    pub base: usize,
}

/// Name-resolution scope: tables visible to the expression.
#[derive(Debug, Clone, Default)]
pub struct Scope<'a> {
    /// Tables in FROM order.
    pub entries: Vec<ScopeEntry<'a>>,
}

impl<'a> Scope<'a> {
    /// Scope over a single table whose columns start at slot 0.
    pub fn single(schema: &'a TableSchema) -> Scope<'a> {
        Scope {
            entries: vec![ScopeEntry { alias: schema.name.clone(), schema, base: 0 }],
        }
    }

    /// Resolve a possibly-qualified column name to a row-buffer slot.
    pub fn resolve(&self, table: Option<&str>, column: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for e in &self.entries {
            if let Some(t) = table {
                if !e.alias.eq_ignore_ascii_case(t) {
                    continue;
                }
            }
            if let Ok(i) = e.schema.column_index(column) {
                if found.is_some() {
                    return Err(Error::EvalError(format!("ambiguous column `{column}`")));
                }
                found = Some(e.base + i);
            }
        }
        found.ok_or_else(|| {
            Error::NoSuchColumn(match table {
                Some(t) => format!("{t}.{column}"),
                None => column.to_owned(),
            })
        })
    }

    /// Total width of the row buffer.
    pub fn width(&self) -> usize {
        self.entries.iter().map(|e| e.schema.arity()).sum()
    }
}

/// Bound (executable) expression. Column references are row-buffer slots;
/// parameters have been substituted.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Row-buffer slot.
    Slot(usize),
    /// Literal value.
    Literal(Value),
    /// Comparison.
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    /// AND.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// OR.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// NOT.
    Not(Box<BoundExpr>),
    /// LIKE.
    Like(Box<BoundExpr>, Box<BoundExpr>),
    /// IS [NOT] NULL.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// IN list.
    InList(Box<BoundExpr>, Vec<BoundExpr>),
}

/// Bind `expr` against `scope`, substituting `params` for placeholders.
pub fn bind(expr: &Expr, scope: &Scope<'_>, params: &[Value]) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Column { table, column } => {
            BoundExpr::Slot(scope.resolve(table.as_deref(), column)?)
        }
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Param(i) => BoundExpr::Literal(
            params
                .get(*i)
                .cloned()
                .ok_or(Error::ParamCount { expected: i + 1, got: params.len() })?,
        ),
        Expr::Cmp(op, a, b) => BoundExpr::Cmp(
            *op,
            Box::new(bind(a, scope, params)?),
            Box::new(bind(b, scope, params)?),
        ),
        Expr::And(a, b) => {
            BoundExpr::And(Box::new(bind(a, scope, params)?), Box::new(bind(b, scope, params)?))
        }
        Expr::Or(a, b) => {
            BoundExpr::Or(Box::new(bind(a, scope, params)?), Box::new(bind(b, scope, params)?))
        }
        Expr::Not(a) => BoundExpr::Not(Box::new(bind(a, scope, params)?)),
        Expr::Like(a, b) => {
            BoundExpr::Like(Box::new(bind(a, scope, params)?), Box::new(bind(b, scope, params)?))
        }
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind(expr, scope, params)?),
            negated: *negated,
        },
        Expr::InList(a, list) => BoundExpr::InList(
            Box::new(bind(a, scope, params)?),
            list.iter().map(|e| bind(e, scope, params)).collect::<Result<_>>()?,
        ),
    })
}

impl BoundExpr {
    /// Evaluate to a value against a row buffer.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        Ok(match self {
            BoundExpr::Slot(i) => row[*i].clone(),
            BoundExpr::Literal(v) => v.clone(),
            BoundExpr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                match va.sql_cmp(&vb) {
                    None => {
                        if va.is_null() || vb.is_null() {
                            Value::Null // three-valued logic: unknown
                        } else {
                            return Err(Error::EvalError(format!(
                                "cannot compare {va} {op} {vb}"
                            )));
                        }
                    }
                    Some(ord) => Value::Bool(match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => ord.is_ne(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    }),
                }
            }
            BoundExpr::And(a, b) => {
                // Kleene AND: false dominates NULL.
                let va = a.eval(row)?;
                if va == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                let vb = b.eval(row)?;
                match (va, vb) {
                    (_, Value::Bool(false)) => Value::Bool(false),
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    (Value::Bool(x), Value::Bool(y)) => Value::Bool(x && y),
                    (x, y) => return Err(Error::EvalError(format!("AND on {x}, {y}"))),
                }
            }
            BoundExpr::Or(a, b) => {
                let va = a.eval(row)?;
                if va == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let vb = b.eval(row)?;
                match (va, vb) {
                    (_, Value::Bool(true)) => Value::Bool(true),
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    (Value::Bool(x), Value::Bool(y)) => Value::Bool(x || y),
                    (x, y) => return Err(Error::EvalError(format!("OR on {x}, {y}"))),
                }
            }
            BoundExpr::Not(a) => match a.eval(row)? {
                Value::Null => Value::Null,
                Value::Bool(b) => Value::Bool(!b),
                x => return Err(Error::EvalError(format!("NOT on {x}"))),
            },
            BoundExpr::Like(a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    Value::Null
                } else {
                    Value::Bool(like_match(va.as_str()?, vb.as_str()?))
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Value::Bool(v.is_null() != *negated)
            }
            BoundExpr::InList(a, list) => {
                let va = a.eval(row)?;
                if va.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for e in list {
                    let v = e.eval(row)?;
                    if v.is_null() {
                        saw_null = true;
                    } else if va.sql_cmp(&v) == Some(std::cmp::Ordering::Equal) {
                        return Ok(Value::Bool(true));
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                }
            }
        })
    }

    /// Evaluate as a WHERE predicate: NULL (unknown) collapses to false.
    pub fn matches(&self, row: &[Value]) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(Error::EvalError(format!("WHERE clause evaluated to {other}"))),
        }
    }

    /// Split a conjunction into its conjuncts (planner helper).
    pub fn conjuncts(&self) -> Vec<&BoundExpr> {
        let mut out = Vec::new();
        fn walk<'e>(e: &'e BoundExpr, out: &mut Vec<&'e BoundExpr>) {
            if let BoundExpr::And(a, b) = e {
                walk(a, out);
                walk(b, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }
}

/// SQL LIKE matching: `%` = any run (including empty), `_` = one char.
/// Case-sensitive (MySQL's default collation was case-insensitive; the MCS
/// treats logical names as case-sensitive identifiers, which we follow).
pub fn like_match(s: &str, pattern: &str) -> bool {
    // Iterative two-pointer algorithm with backtracking on the last `%`.
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pi after %, si at that time)
    while si < s.len() {
        // `%` must be tested before literal equality: the subject string
        // may itself contain `%` characters.
        if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if let Some((sp, ss)) = star {
            pi = sp;
            si = ss + 1;
            star = Some((sp, si));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    fn scope_schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::required("a", ValueType::Int),
                ColumnDef::nullable("b", ValueType::Str),
            ],
            &[],
        )
        .unwrap()
    }

    fn eval(expr: &Expr, row: &[Value]) -> Value {
        let schema = scope_schema();
        let scope = Scope::single(&schema);
        bind(expr, &scope, &[]).unwrap().eval(row).unwrap()
    }

    #[test]
    fn comparisons() {
        let row = vec![Value::Int(5), Value::from("x")];
        assert_eq!(eval(&Expr::col_eq("a", 5i64), &row), Value::Bool(true));
        assert_eq!(eval(&Expr::col_eq("a", 6i64), &row), Value::Bool(false));
        let gt = Expr::Cmp(CmpOp::Gt, Box::new(Expr::col("a")), Box::new(Expr::lit(4i64)));
        assert_eq!(eval(&gt, &row), Value::Bool(true));
    }

    #[test]
    fn null_three_valued_logic() {
        let row = vec![Value::Int(5), Value::Null];
        // b = 'x' is unknown -> matches() false
        let e = Expr::col_eq("b", "x");
        let schema = scope_schema();
        let scope = Scope::single(&schema);
        let be = bind(&e, &scope, &[]).unwrap();
        assert_eq!(be.eval(&row).unwrap(), Value::Null);
        assert!(!be.matches(&row).unwrap());
        // NOT (b = 'x') is also unknown, not true
        let ne = Expr::Not(Box::new(e));
        let bne = bind(&ne, &scope, &[]).unwrap();
        assert!(!bne.matches(&row).unwrap());
        // b IS NULL is true
        let isn = Expr::IsNull { expr: Box::new(Expr::col("b")), negated: false };
        assert!(bind(&isn, &scope, &[]).unwrap().matches(&row).unwrap());
    }

    #[test]
    fn and_or_short_circuit_with_null() {
        let row = vec![Value::Int(5), Value::Null];
        // FALSE AND unknown = FALSE
        let e = Expr::And(Box::new(Expr::col_eq("a", 1i64)), Box::new(Expr::col_eq("b", "x")));
        assert_eq!(eval(&e, &row), Value::Bool(false));
        // TRUE OR unknown = TRUE
        let e = Expr::Or(Box::new(Expr::col_eq("a", 5i64)), Box::new(Expr::col_eq("b", "x")));
        assert_eq!(eval(&e, &row), Value::Bool(true));
        // TRUE AND unknown = unknown
        let e = Expr::And(Box::new(Expr::col_eq("a", 5i64)), Box::new(Expr::col_eq("b", "x")));
        assert_eq!(eval(&e, &row), Value::Null);
    }

    #[test]
    fn params_substitute() {
        let schema = scope_schema();
        let scope = Scope::single(&schema);
        let e = Expr::Cmp(CmpOp::Eq, Box::new(Expr::col("a")), Box::new(Expr::Param(0)));
        assert_eq!(e.param_count(), 1);
        let be = bind(&e, &scope, &[Value::Int(5)]).unwrap();
        assert!(be.matches(&[Value::Int(5), Value::Null]).unwrap());
        assert!(matches!(
            bind(&e, &scope, &[]),
            Err(Error::ParamCount { expected: 1, got: 0 })
        ));
    }

    #[test]
    fn in_list_semantics() {
        let row = vec![Value::Int(5), Value::Null];
        let e = Expr::InList(Box::new(Expr::col("a")), vec![Expr::lit(1i64), Expr::lit(5i64)]);
        assert_eq!(eval(&e, &row), Value::Bool(true));
        let e = Expr::InList(
            Box::new(Expr::col("a")),
            vec![Expr::lit(1i64), Expr::Literal(Value::Null)],
        );
        assert_eq!(eval(&e, &row), Value::Null); // unknown, not false
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("run_H1_0042.gwf", "run_H1_%"));
        assert!(like_match("abc", "a_c"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "a_"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("xx.abc.yy", "%.abc.%"));
        assert!(!like_match("xabc", "%.abc.%"));
        assert!(like_match("aaa", "%a"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn ambiguous_and_missing_columns() {
        let s1 = scope_schema();
        let mut s2 = scope_schema();
        s2.name = "u".into();
        let scope = Scope {
            entries: vec![
                ScopeEntry { alias: "t".into(), schema: &s1, base: 0 },
                ScopeEntry { alias: "u".into(), schema: &s2, base: 2 },
            ],
        };
        assert!(scope.resolve(None, "a").is_err()); // ambiguous
        assert_eq!(scope.resolve(Some("u"), "a").unwrap(), 2);
        assert!(scope.resolve(None, "zzz").is_err());
        assert_eq!(scope.width(), 4);
    }

    #[test]
    fn conjunct_splitting() {
        let schema = scope_schema();
        let scope = Scope::single(&schema);
        let e = Expr::And(
            Box::new(Expr::col_eq("a", 1i64)),
            Box::new(Expr::And(Box::new(Expr::col_eq("a", 2i64)), Box::new(Expr::col_eq("a", 3i64)))),
        );
        let be = bind(&e, &scope, &[]).unwrap();
        assert_eq!(be.conjuncts().len(), 3);
    }
}
