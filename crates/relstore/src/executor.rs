//! Statement execution: SELECT pipelines (scan/index → filter → sort →
//! project/aggregate) and the write statements with undo logging.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::db::Database;
use crate::error::{Error, Result};
use crate::index::IndexDef;
use crate::planner::{candidate_iter, candidates, plan_table, plan_table_costed, AccessPath};
use crate::predicate::{bind, BoundExpr, CmpOp, Expr, Scope, ScopeEntry};
use crate::row::RowId;
use crate::schema::{ColumnDef, TableSchema};
use crate::sql::ast::*;
use crate::table::Table;
use crate::txn::{UndoLog, UndoOp};
use crate::value::Value;

/// A query result: column labels plus data rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Data rows, one `Vec<Value>` per row.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Position of an output column by label.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Iterate one output column's values.
    pub fn column_values<'a>(&'a self, name: &str) -> Option<impl Iterator<Item = &'a Value>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(move |r| &r[i]))
    }
}

/// Result of executing any statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecResult {
    /// Rows inserted/updated/deleted (0 for SELECT and DDL).
    pub rows_affected: usize,
    /// AUTO_INCREMENT value assigned by the last INSERT, if any.
    pub last_insert_id: Option<i64>,
    /// Result rows, for SELECT.
    pub rows: Option<ResultSet>,
}

/// Execute a parsed statement. `undo`, when present, records inverse
/// operations for rollback. BEGIN/COMMIT/ROLLBACK are session-level and
/// rejected here.
pub(crate) fn exec_statement(
    db: &Database,
    stmt: &Statement,
    params: &[Value],
    mut undo: Option<&mut UndoLog>,
) -> Result<ExecResult> {
    match stmt {
        Statement::CreateTable { name, columns, primary_key, if_not_exists } => {
            exec_create_table(db, name, columns, primary_key, *if_not_exists)
        }
        Statement::CreateIndex { name, table, columns, unique } => {
            let handle = db.table(table)?;
            let mut t = handle.write();
            let cols: Vec<usize> = columns
                .iter()
                .map(|c| t.schema.column_index(c))
                .collect::<Result<_>>()?;
            t.create_index(IndexDef { name: name.clone(), columns: cols, unique: *unique })?;
            Ok(ExecResult::default())
        }
        Statement::DropTable { name, if_exists } => {
            match db.drop_table(name) {
                Ok(()) => Ok(ExecResult::default()),
                Err(Error::NoSuchTable(_)) if *if_exists => Ok(ExecResult::default()),
                Err(e) => Err(e),
            }
        }
        Statement::DropIndex { name, table } => {
            let handle = db.table(table)?;
            handle.write().drop_index(name)?;
            Ok(ExecResult::default())
        }
        Statement::Insert { table, columns, rows } => {
            exec_insert(db, table, columns, rows, params, undo.as_deref_mut())
        }
        Statement::Select(sel) => {
            Ok(ExecResult { rows: Some(exec_select(db, sel, params)?), ..Default::default() })
        }
        Statement::Update { table, sets, where_clause } => {
            exec_update(db, table, sets, where_clause.as_ref(), params, undo.as_deref_mut())
        }
        Statement::Delete { table, where_clause } => {
            exec_delete(db, table, where_clause.as_ref(), params, undo.as_deref_mut())
        }
        Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::TxnState(
            "BEGIN/COMMIT/ROLLBACK must go through a Session".into(),
        )),
    }
}

fn exec_create_table(
    db: &Database,
    name: &str,
    columns: &[ColumnSpec],
    table_pk: &[String],
    if_not_exists: bool,
) -> Result<ExecResult> {
    let mut defs = Vec::with_capacity(columns.len());
    let mut pk: Vec<String> = table_pk.to_vec();
    let mut inline_unique = Vec::new();
    for spec in columns {
        if spec.primary_key {
            if !pk.is_empty() {
                return Err(Error::ExecError(format!(
                    "multiple primary keys declared on `{name}`"
                )));
            }
            pk.push(spec.name.clone());
        }
        if spec.unique {
            inline_unique.push(spec.name.clone());
        }
        defs.push(ColumnDef {
            name: spec.name.clone(),
            ty: spec.ty,
            // PRIMARY KEY and AUTO_INCREMENT imply NOT NULL
            nullable: !(spec.not_null || spec.primary_key || spec.auto_increment),
            max_len: spec.max_len,
            default: spec.default.clone(),
            auto_increment: spec.auto_increment,
        });
    }
    let pk_refs: Vec<&str> = pk.iter().map(String::as_str).collect();
    let schema = TableSchema::new(name, defs, &pk_refs)?;
    let mut table = Table::new(schema);
    for col in inline_unique {
        let idx = table.schema.column_index(&col)?;
        table.create_index(IndexDef {
            name: format!("uq_{name}_{col}"),
            columns: vec![idx],
            unique: true,
        })?;
    }
    match db.add_table(table) {
        Ok(()) => Ok(ExecResult::default()),
        Err(Error::TableExists(_)) if if_not_exists => Ok(ExecResult::default()),
        Err(e) => Err(e),
    }
}

/// Evaluate a row-less expression (INSERT values, UPDATE right-hand sides
/// may only use literals and params).
fn eval_const(expr: &Expr, params: &[Value]) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => params
            .get(*i)
            .cloned()
            .ok_or(Error::ParamCount { expected: i + 1, got: params.len() }),
        other => Err(Error::ExecError(format!(
            "only literals and `?` allowed here, got {other:?}"
        ))),
    }
}

fn exec_insert(
    db: &Database,
    table: &str,
    columns: &[String],
    rows: &[Vec<Expr>],
    params: &[Value],
    mut undo: Option<&mut UndoLog>,
) -> Result<ExecResult> {
    let handle = db.table(table)?;
    let mut t = handle.write();
    let arity = t.schema.arity();
    // Map supplied columns to schema positions.
    let positions: Vec<usize> = if columns.is_empty() {
        (0..arity).collect()
    } else {
        columns.iter().map(|c| t.schema.column_index(c)).collect::<Result<_>>()?
    };
    let mut affected = 0;
    let mut last_id = None;
    let mut inserted: Vec<RowId> = Vec::new();
    let result: Result<()> = (|| {
        for row_exprs in rows {
            if row_exprs.len() != positions.len() {
                return Err(Error::ExecError(format!(
                    "INSERT expects {} values, got {}",
                    positions.len(),
                    row_exprs.len()
                )));
            }
            // Start from per-column defaults (NULL when none).
            let mut full: Vec<Value> = t
                .schema
                .columns
                .iter()
                .map(|c| c.default.clone().unwrap_or(Value::Null))
                .collect();
            for (pos, e) in positions.iter().zip(row_exprs) {
                full[*pos] = eval_const(e, params)?;
            }
            let id = t.insert(full)?;
            inserted.push(id);
            affected += 1;
            if let Some(v) = t.last_auto_value() {
                last_id = Some(v);
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            if let Some(log) = undo.as_deref_mut() {
                for id in inserted {
                    log.push(handle.clone(), UndoOp::UndoInsert(id));
                }
            }
            Ok(ExecResult { rows_affected: affected, last_insert_id: last_id, rows: None })
        }
        Err(e) => {
            // Multi-row INSERT is atomic: roll back rows already inserted.
            for id in inserted.into_iter().rev() {
                let _ = t.rollback_insert(id);
            }
            Err(e)
        }
    }
}

fn exec_update(
    db: &Database,
    table: &str,
    sets: &[(String, Expr)],
    where_clause: Option<&Expr>,
    params: &[Value],
    mut undo: Option<&mut UndoLog>,
) -> Result<ExecResult> {
    let handle = db.table(table)?;
    let mut t = handle.write();
    let scope = Scope::single(&t.schema);
    let pred = where_clause.map(|w| bind(w, &scope, params)).transpose()?;
    let set_pos: Vec<(usize, Value)> = sets
        .iter()
        .map(|(c, e)| Ok((t.schema.column_index(c)?, eval_const(e, params)?)))
        .collect::<Result<_>>()?;
    let path = plan_table(&t, pred.as_ref(), 0);
    let ids = candidates(&t, &path);
    let mut matched = Vec::new();
    for id in ids {
        let Some(row) = t.get(id) else { continue };
        if match &pred {
            Some(p) => p.matches(row)?,
            None => true,
        } {
            matched.push(id);
        }
    }
    let mut changed = Vec::new(); // (id, old_row) for rollback on mid-way error
    let result: Result<()> = (|| {
        for &id in &matched {
            let mut new_row = t.get(id).expect("matched row exists").clone();
            for (pos, v) in &set_pos {
                new_row[*pos] = v.clone();
            }
            let old = t.update(id, new_row)?;
            changed.push((id, old));
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            let n = changed.len();
            if let Some(log) = undo.as_deref_mut() {
                for (id, old) in changed {
                    log.push(handle.clone(), UndoOp::UndoUpdate(id, old));
                }
            }
            Ok(ExecResult { rows_affected: n, ..Default::default() })
        }
        Err(e) => {
            for (id, old) in changed.into_iter().rev() {
                let _ = t.rollback_update(id, old);
            }
            Err(e)
        }
    }
}

fn exec_delete(
    db: &Database,
    table: &str,
    where_clause: Option<&Expr>,
    params: &[Value],
    mut undo: Option<&mut UndoLog>,
) -> Result<ExecResult> {
    let handle = db.table(table)?;
    let mut t = handle.write();
    let scope = Scope::single(&t.schema);
    let pred = where_clause.map(|w| bind(w, &scope, params)).transpose()?;
    let path = plan_table(&t, pred.as_ref(), 0);
    let ids = candidates(&t, &path);
    let mut affected = 0;
    for id in ids {
        let Some(row) = t.get(id) else { continue };
        if match &pred {
            Some(p) => p.matches(row)?,
            None => true,
        } {
            let old = t.delete(id)?;
            if let Some(log) = undo.as_deref_mut() {
                log.push(handle.clone(), UndoOp::UndoDelete(id, old));
            } // else: old row dropped
            affected += 1;
        }
    }
    Ok(ExecResult { rows_affected: affected, ..Default::default() })
}

/// Execute a SELECT and materialize the result set.
pub(crate) fn exec_select(db: &Database, sel: &Select, params: &[Value]) -> Result<ResultSet> {
    // Resolve all tables, sort lock acquisition by table name to avoid
    // deadlocks with concurrent multi-table readers/writers.
    let mut names: Vec<&str> = std::iter::once(sel.from.table.as_str())
        .chain(sel.joins.iter().map(|j| j.table.table.as_str()))
        .collect();
    let handles: Vec<(String, Arc<RwLock<Table>>)> = {
        let mut hs = Vec::new();
        for n in &names {
            hs.push(((*n).to_owned(), db.table(n)?));
        }
        hs
    };
    names.sort_unstable();
    names.dedup();
    // Acquire guards in name order; keep them addressable by position.
    // (Self-joins share a guard via the map below.)
    let mut guard_map: std::collections::BTreeMap<String, parking_lot::RwLockReadGuard<'_, Table>> =
        std::collections::BTreeMap::new();
    for n in &names {
        let (_, h) = handles.iter().find(|(hn, _)| hn == n).expect("resolved above");
        // Safety of lifetime: guards borrow from `handles`, both live to fn end.
        guard_map.insert((*n).to_owned(), h.read());
    }
    let table_for = |r: &TableRef| -> &Table { &guard_map[&r.table] };

    // Build the scope.
    let mut scope = Scope::default();
    let mut base = 0usize;
    let all_refs: Vec<&TableRef> =
        std::iter::once(&sel.from).chain(sel.joins.iter().map(|j| &j.table)).collect();
    for r in &all_refs {
        let t = table_for(r);
        scope.entries.push(ScopeEntry {
            alias: r.alias.clone().unwrap_or_else(|| r.table.clone()),
            schema: &t.schema,
            base,
        });
        base += t.schema.arity();
    }

    // Bind predicates: WHERE plus each JOIN ON.
    let where_bound = sel.where_clause.as_ref().map(|w| bind(w, &scope, params)).transpose()?;
    let on_bound: Vec<BoundExpr> = sel
        .joins
        .iter()
        .map(|j| bind(&j.on, &scope, params))
        .collect::<Result<_>>()?;

    let keys: Vec<(usize, bool)> = sel
        .order_by
        .iter()
        .map(|k| Ok((scope.resolve(k.table.as_deref(), &k.column)?, k.desc)))
        .collect::<Result<_>>()?;

    // Collect matching row buffers. A single-table SELECT streams straight
    // off the chosen access path — the candidate iterator is lazy, so a
    // LIMIT (with no ORDER BY, or an ORDER BY the index already satisfies)
    // terminates the scan early instead of materializing every match.
    // Joins go through the left-deep nested loop.
    let mut matched: Vec<Vec<Value>> = Vec::new();
    let mut pre_sorted = false;
    {
        let tables: Vec<&Table> = all_refs.iter().map(|r| table_for(r)).collect();
        let bases: Vec<usize> = scope.entries.iter().map(|e| e.base).collect();
        if tables.len() == 1 {
            let t = tables[0];
            let plan = plan_table_costed(t, where_bound.as_ref(), 0);
            pre_sorted = !keys.is_empty() && index_satisfies_order(t, &plan.path, &keys);
            let cutoff = if keys.is_empty() || pre_sorted {
                sel.limit.map(|l| l.saturating_add(sel.offset.unwrap_or(0)))
            } else {
                None
            };
            for id in candidate_iter(t, &plan.path) {
                // Snapshot-filtered when this thread has a pinned MVCC
                // snapshot (index candidates can be dangling or too new).
                let Some(row) = crate::db::snapshot_row(t, id) else { continue };
                if let Some(w) = &where_bound {
                    if !w.matches(row)? {
                        continue;
                    }
                }
                matched.push(row.clone());
                if cutoff.is_some_and(|c| matched.len() >= c) {
                    break;
                }
            }
        } else {
            // Predicate availability: ON clause i is checkable once tables
            // 0..=i+1 are joined; WHERE only at the end (except that the
            // planner mines it for single-table constraints at every level).
            join_level(
                &tables,
                &bases,
                0,
                &mut vec![Value::Null; scope.width()],
                &on_bound,
                where_bound.as_ref(),
                &mut matched,
            )?;
        }
    }

    // ORDER BY on the full row buffers (skipped when the index already
    // delivered them in key order).
    if !keys.is_empty() && !pre_sorted {
        matched.sort_by(|a, b| {
            for (slot, desc) in &keys {
                let ord = a[*slot].index_cmp(&b[*slot]);
                if ord != std::cmp::Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // OFFSET / LIMIT.
    let offset = sel.offset.unwrap_or(0);
    let matched: Vec<Vec<Value>> = matched
        .into_iter()
        .skip(offset)
        .take(sel.limit.unwrap_or(usize::MAX))
        .collect();

    // Projection / aggregation.
    let has_agg = sel.items.iter().any(|i| matches!(i, SelectItem::Aggregate { .. }));
    if has_agg {
        if sel.items.iter().any(|i| !matches!(i, SelectItem::Aggregate { .. })) {
            return Err(Error::ExecError(
                "mixing aggregates and plain columns requires GROUP BY (unsupported)".into(),
            ));
        }
        let mut columns = Vec::new();
        let mut out = Vec::new();
        for item in &sel.items {
            let SelectItem::Aggregate { func, column, alias } = item else { unreachable!() };
            let slot = column
                .as_ref()
                .map(|(t, c)| scope.resolve(t.as_deref(), c))
                .transpose()?;
            let label = alias.clone().unwrap_or_else(|| {
                let inner = column.as_ref().map_or("*".to_owned(), |(_, c)| c.clone());
                format!("{}({})", agg_name(*func), inner)
            });
            columns.push(label);
            out.push(eval_aggregate(*func, slot, &matched)?);
        }
        return Ok(ResultSet { columns, rows: vec![out] });
    }

    let mut columns = Vec::new();
    let mut slots = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for e in &scope.entries {
                    for (i, c) in e.schema.columns.iter().enumerate() {
                        columns.push(c.name.clone());
                        slots.push(e.base + i);
                    }
                }
            }
            SelectItem::Column { table, column, alias } => {
                slots.push(scope.resolve(table.as_deref(), column)?);
                columns.push(alias.clone().unwrap_or_else(|| column.clone()));
            }
            SelectItem::Aggregate { .. } => unreachable!("handled above"),
        }
    }
    let rows = matched
        .into_iter()
        .map(|buf| slots.iter().map(|&s| buf[s].clone()).collect())
        .collect();
    Ok(ResultSet { columns, rows })
}

/// Does walking `path` deliver rows already ordered by `keys`? True when
/// every sort key is ascending and matches the index column right after
/// the equality prefix, in order — then the B-tree walk *is* the sort.
fn index_satisfies_order(t: &Table, path: &AccessPath, keys: &[(usize, bool)]) -> bool {
    let AccessPath::Index { index, prefix, .. } = path else { return false };
    let cols = &t.indexes()[*index].def.columns;
    keys.iter()
        .enumerate()
        .all(|(i, (slot, desc))| !desc && cols.get(prefix.len() + i) == Some(slot))
}

/// Produce EXPLAIN lines for a SELECT without executing it: one line per
/// table in join order with the chosen access path, then how ORDER BY and
/// LIMIT will be handled. Join levels beyond the first are planned with
/// earlier tables' columns stood in by a placeholder value (their real
/// values exist only per outer row), so those lines show the path shape
/// without row estimates.
pub(crate) fn explain_select(db: &Database, sel: &Select, params: &[Value]) -> Result<Vec<String>> {
    let mut names: Vec<&str> = std::iter::once(sel.from.table.as_str())
        .chain(sel.joins.iter().map(|j| j.table.table.as_str()))
        .collect();
    let handles: Vec<(String, Arc<RwLock<Table>>)> = {
        let mut hs = Vec::new();
        for n in &names {
            hs.push(((*n).to_owned(), db.table(n)?));
        }
        hs
    };
    names.sort_unstable();
    names.dedup();
    let mut guard_map: std::collections::BTreeMap<String, parking_lot::RwLockReadGuard<'_, Table>> =
        std::collections::BTreeMap::new();
    for n in &names {
        let (_, h) = handles.iter().find(|(hn, _)| hn == n).expect("resolved above");
        guard_map.insert((*n).to_owned(), h.read());
    }
    let table_for = |r: &TableRef| -> &Table { &guard_map[&r.table] };

    let mut scope = Scope::default();
    let mut base = 0usize;
    let all_refs: Vec<&TableRef> =
        std::iter::once(&sel.from).chain(sel.joins.iter().map(|j| &j.table)).collect();
    for r in &all_refs {
        let t = table_for(r);
        scope.entries.push(ScopeEntry {
            alias: r.alias.clone().unwrap_or_else(|| r.table.clone()),
            schema: &t.schema,
            base,
        });
        base += t.schema.arity();
    }
    let where_bound = sel.where_clause.as_ref().map(|w| bind(w, &scope, params)).transpose()?;
    let on_bound: Vec<BoundExpr> = sel
        .joins
        .iter()
        .map(|j| bind(&j.on, &scope, params))
        .collect::<Result<_>>()?;
    let tables: Vec<&Table> = all_refs.iter().map(|r| table_for(r)).collect();
    let bases: Vec<usize> = scope.entries.iter().map(|e| e.base).collect();

    let mut lines = Vec::new();
    let mut first_path: Option<AccessPath> = None;
    for (level, (&t, &lvl_base)) in tables.iter().zip(&bases).enumerate() {
        let visible = lvl_base + t.schema.arity();
        let mut sargable: Vec<BoundExpr> = Vec::new();
        let mut preds: Vec<&BoundExpr> = Vec::new();
        if let Some(w) = &where_bound {
            preds.push(w);
        }
        for (i, on) in on_bound.iter().enumerate() {
            if level >= i + 1 {
                preds.push(on);
            }
        }
        for p in preds {
            for c in p.conjuncts() {
                if max_slot(c).is_some_and(|m| m < visible) {
                    let inlined = inline_placeholder(c, lvl_base);
                    if min_slot(&inlined).is_none_or(|s| s >= lvl_base) {
                        sargable.push(inlined);
                    }
                }
            }
        }
        let combined = combine_and(sargable);
        let plan = plan_table_costed(t, combined.as_ref(), lvl_base);
        if level == 0 {
            lines.push(plan.describe(t));
            first_path = Some(plan.path);
        } else {
            lines.push(format!("{} [per outer row]", plan.path.shape(t)));
        }
    }

    if !sel.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = sel
            .order_by
            .iter()
            .map(|k| Ok((scope.resolve(k.table.as_deref(), &k.column)?, k.desc)))
            .collect::<Result<_>>()?;
        let streamed = tables.len() == 1
            && first_path.as_ref().is_some_and(|p| index_satisfies_order(tables[0], p, &keys));
        lines.push(if streamed {
            "order by: streamed from index".to_owned()
        } else {
            "order by: sort".to_owned()
        });
    }
    if let Some(l) = sel.limit {
        let early = tables.len() == 1
            && (sel.order_by.is_empty() || lines.iter().any(|s| s.ends_with("streamed from index")));
        lines.push(format!(
            "limit: {l}{}",
            if early { " (early termination)" } else { "" }
        ));
    }
    Ok(lines)
}

/// Replace slots below `base` with a placeholder literal so explain can
/// show which index a join level would probe (the real values exist only
/// per outer row at execution time).
fn inline_placeholder(e: &BoundExpr, base: usize) -> BoundExpr {
    let buf: Vec<Value> = vec![Value::Int(0); base];
    inline_known(e, base, &buf)
}

fn agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "COUNT",
        AggFunc::Min => "MIN",
        AggFunc::Max => "MAX",
    }
}

fn eval_aggregate(func: AggFunc, slot: Option<usize>, rows: &[Vec<Value>]) -> Result<Value> {
    Ok(match func {
        AggFunc::Count => match slot {
            None => Value::Int(rows.len() as i64),
            Some(s) => Value::Int(rows.iter().filter(|r| !r[s].is_null()).count() as i64),
        },
        AggFunc::Min | AggFunc::Max => {
            let s = slot.ok_or_else(|| Error::ExecError("MIN/MAX need a column".into()))?;
            let mut best: Option<&Value> = None;
            for r in rows {
                let v = &r[s];
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = v.index_cmp(b);
                        let take = if func == AggFunc::Min {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.cloned().unwrap_or(Value::Null)
        }
    })
}

/// Recursive nested-loop join over `tables[level..]`. `buf` holds the
/// partial row; completed rows that satisfy every applicable predicate are
/// pushed to `out`.
#[allow(clippy::too_many_arguments)]
fn join_level(
    tables: &[&Table],
    bases: &[usize],
    level: usize,
    buf: &mut Vec<Value>,
    on_bound: &[BoundExpr],
    where_bound: Option<&BoundExpr>,
    out: &mut Vec<Vec<Value>>,
) -> Result<()> {
    if level == tables.len() {
        if let Some(w) = where_bound {
            if !w.matches(buf)? {
                return Ok(());
            }
        }
        out.push(buf.clone());
        return Ok(());
    }
    let t = tables[level];
    let base = bases[level];

    // Build the constraint expression visible at this level: conjuncts of
    // WHERE and of ON clauses for already-joined tables that reference only
    // this table's slots as unknowns — with slots of earlier tables
    // replaced by their current values so the planner can use them
    // (index nested-loop join).
    let mut sargable: Vec<BoundExpr> = Vec::new();
    let mut level_filters: Vec<BoundExpr> = Vec::new();
    let visible = base + t.schema.arity();
    let mut preds: Vec<&BoundExpr> = Vec::new();
    if let Some(w) = where_bound {
        preds.push(w);
    }
    // ON clause i joins table i+1; usable once level >= i+1.
    for (i, on) in on_bound.iter().enumerate() {
        if level >= i + 1 {
            preds.push(on);
        }
    }
    for p in preds {
        for c in p.conjuncts() {
            match max_slot(c) {
                Some(m) if m < visible => {
                    let inlined = inline_known(c, base, buf);
                    if min_slot(&inlined).is_some_and(|s| s >= base) || min_slot(&inlined).is_none()
                    {
                        // references only this table (or is now constant)
                        sargable.push(inlined.clone());
                        level_filters.push(inlined);
                    }
                }
                _ => {}
            }
        }
    }
    let combined = combine_and(sargable);
    let path = plan_table(t, combined.as_ref(), base);
    let ids = candidates(t, &path);
    'rows: for id in ids {
        // Snapshot-filtered when this thread has a pinned MVCC snapshot
        // (index candidates can be dangling or too new); plain latest-image
        // fetch otherwise.
        let Some(row) = crate::db::snapshot_row(t, id) else { continue };
        buf[base..base + row.len()].clone_from_slice(row);
        for f in &level_filters {
            if !f.matches(buf)? {
                continue 'rows;
            }
        }
        join_level(tables, bases, level + 1, buf, on_bound, where_bound, out)?;
    }
    // clear this level's slots so stale values never leak into siblings
    for v in &mut buf[base..visible] {
        *v = Value::Null;
    }
    Ok(())
}

fn combine_and(mut exprs: Vec<BoundExpr>) -> Option<BoundExpr> {
    let mut acc = exprs.pop()?;
    while let Some(e) = exprs.pop() {
        acc = BoundExpr::And(Box::new(e), Box::new(acc));
    }
    Some(acc)
}

/// Largest slot referenced by an expression, or None if constant.
fn max_slot(e: &BoundExpr) -> Option<usize> {
    fold_slots(e, None, |acc, s| Some(acc.map_or(s, |a: usize| a.max(s))))
}

/// Smallest slot referenced by an expression, or None if constant.
fn min_slot(e: &BoundExpr) -> Option<usize> {
    fold_slots(e, None, |acc, s| Some(acc.map_or(s, |a: usize| a.min(s))))
}

fn fold_slots(
    e: &BoundExpr,
    init: Option<usize>,
    f: fn(Option<usize>, usize) -> Option<usize>,
) -> Option<usize> {
    let mut acc = init;
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match e {
            BoundExpr::Slot(s) => acc = f(acc, *s),
            BoundExpr::Literal(_) => {}
            BoundExpr::Cmp(_, a, b)
            | BoundExpr::And(a, b)
            | BoundExpr::Or(a, b)
            | BoundExpr::Like(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            BoundExpr::Not(a) | BoundExpr::IsNull { expr: a, .. } => stack.push(a),
            BoundExpr::InList(a, list) => {
                stack.push(a);
                stack.extend(list.iter());
            }
        }
    }
    acc
}

/// Replace slots below `base` (earlier join levels, already valued in
/// `buf`) with literals so the planner can exploit them.
fn inline_known(e: &BoundExpr, base: usize, buf: &[Value]) -> BoundExpr {
    match e {
        BoundExpr::Slot(s) if *s < base => BoundExpr::Literal(buf[*s].clone()),
        BoundExpr::Slot(_) | BoundExpr::Literal(_) => e.clone(),
        BoundExpr::Cmp(op, a, b) => BoundExpr::Cmp(
            *op,
            Box::new(inline_known(a, base, buf)),
            Box::new(inline_known(b, base, buf)),
        ),
        BoundExpr::And(a, b) => BoundExpr::And(
            Box::new(inline_known(a, base, buf)),
            Box::new(inline_known(b, base, buf)),
        ),
        BoundExpr::Or(a, b) => BoundExpr::Or(
            Box::new(inline_known(a, base, buf)),
            Box::new(inline_known(b, base, buf)),
        ),
        BoundExpr::Not(a) => BoundExpr::Not(Box::new(inline_known(a, base, buf))),
        BoundExpr::Like(a, b) => BoundExpr::Like(
            Box::new(inline_known(a, base, buf)),
            Box::new(inline_known(b, base, buf)),
        ),
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(inline_known(expr, base, buf)),
            negated: *negated,
        },
        BoundExpr::InList(a, list) => BoundExpr::InList(
            Box::new(inline_known(a, base, buf)),
            list.iter().map(|e| inline_known(e, base, buf)).collect(),
        ),
    }
}

/// Placeholder for the unused CmpOp import when compiled without tests.
#[allow(dead_code)]
fn _keep(_: CmpOp) {}
