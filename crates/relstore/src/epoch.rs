//! Commit epochs and the durable-epoch watermark backing
//! [`Durability::Async`](crate::db::Durability::Async).
//!
//! Every unit that enters the write-ahead log — an autocommit statement,
//! an `Always` commit, a `Group` commit, an `Async` commit — is assigned a
//! **commit epoch** from a single per-database counter at the moment its
//! log position becomes fixed: a queued group takes its epoch under the
//! commit-queue lock as it is enqueued, and a direct append takes its
//! epoch inside the same queue-lock critical section in which it drains
//! the queue (while holding the WAL mutex). Because both allocation points
//! coincide with log-position assignment, **epoch order equals log
//! order**: if `e1 < e2` then `e1`'s bytes precede `e2`'s in the log, and
//! recovery can never replay `e2` without `e1`.
//!
//! The [`EpochGate`] publishes the **durable epoch**: the largest epoch
//! whose bytes have been flushed (and, under
//! [`SyncPolicy::EveryWrite`](crate::wal::SyncPolicy::EveryWrite), synced)
//! to the log. An `Async` commit returns its epoch immediately;
//! [`Database::wait_for_epoch`] parks until the watermark passes it. The
//! watermark is monotone (publication takes the max) and advances only on
//! successful appends; when the WAL writer poisons itself the gate is
//! *failed* instead, so waiters return [`Error::DurabilityLost`] promptly
//! rather than hanging forever. `checkpoint()` clears a failure: the
//! snapshot it writes captures every allocated epoch's effects, which
//! makes all of them durable at once (see DESIGN.md §7.2).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::db::Database;
use crate::error::{Error, Result};

/// Publishes the durable-epoch watermark and wakes waiters. One per
/// [`Database`]; a leaf lock (acquired after the WAL mutex and the
/// commit-queue lock, never before them).
#[derive(Debug, Default)]
pub(crate) struct EpochGate {
    state: Mutex<GateState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    /// Largest epoch known durable. Never decreases.
    durable: u64,
    /// Set when a WAL append/flush/sync failed after commits with epochs
    /// above `durable` were acknowledged: those epochs can no longer
    /// become durable through the log. Cleared by [`EpochGate::recover`]
    /// (checkpoint). The message describes the original failure.
    failed: Option<String>,
}

impl EpochGate {
    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Raise the watermark to at least `epoch` (monotone max) and wake
    /// waiters. Called after a successful append+flush covering `epoch`.
    pub(crate) fn publish(&self, epoch: u64) {
        let mut st = self.lock();
        if epoch > st.durable {
            st.durable = epoch;
            self.cond.notify_all();
        }
    }

    /// Record a WAL failure: epochs above the current watermark will never
    /// become durable through the log. Wakes waiters so they can fail.
    pub(crate) fn fail(&self, msg: &str) {
        let mut st = self.lock();
        if st.failed.is_none() {
            st.failed = Some(msg.to_owned());
        }
        self.cond.notify_all();
    }

    /// Checkpoint recovery: the snapshot captured every effect up to
    /// `epoch`, so everything allocated so far is durable and any earlier
    /// failure is moot. Monotone like `publish`.
    pub(crate) fn recover(&self, epoch: u64) {
        let mut st = self.lock();
        st.durable = st.durable.max(epoch);
        st.failed = None;
        self.cond.notify_all();
    }

    /// Current watermark.
    pub(crate) fn durable(&self) -> u64 {
        self.lock().durable
    }

    /// Park until the watermark reaches `epoch`, or fail fast with
    /// [`Error::DurabilityLost`] if the gate failed first.
    pub(crate) fn wait_for(&self, epoch: u64) -> Result<()> {
        let mut st = self.lock();
        loop {
            if st.durable >= epoch {
                return Ok(());
            }
            if let Some(msg) = &st.failed {
                return Err(Error::DurabilityLost(msg.clone()));
            }
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Database {
    /// The most recently allocated commit epoch (0 before the first logged
    /// write). Epochs are allocated in log order, so everything the
    /// database has acknowledged so far has an epoch `<=` this value.
    pub fn commit_epoch(&self) -> u64 {
        self.commit_epochs().load(std::sync::atomic::Ordering::Acquire)
    }

    /// The durable-epoch watermark: the largest epoch whose WAL bytes have
    /// been flushed to the log (and synced, under
    /// [`SyncPolicy::EveryWrite`](crate::wal::SyncPolicy::EveryWrite)).
    /// Monotone; never exceeds [`Database::commit_epoch`].
    pub fn durable_epoch(&self) -> u64 {
        self.epoch_gate().durable()
    }

    /// Block until `durable_epoch() >= epoch`. Returns immediately for
    /// epochs already durable (including `0`); otherwise it *drives* the
    /// flush rather than waiting for the flusher's next window — it
    /// registers as a sync waiter (cutting any leader's collection window
    /// short) and drains the queue, so the wait costs write+sync time even
    /// when `max_wait` is tuned long. Errors:
    ///
    /// * [`Error::DurabilityLost`] if the WAL writer failed (poisoned)
    ///   while the epoch was still pending — the promise cannot be kept
    ///   through the log. `checkpoint()` clears the condition (and makes
    ///   every allocated epoch durable via the snapshot), after which this
    ///   returns `Ok`.
    /// * [`Error::TxnState`] if `epoch` was never allocated (it is greater
    ///   than [`Database::commit_epoch`]) — waiting for it would hang
    ///   forever; this guards network callers passing stale numbers.
    pub fn wait_for_epoch(&self, epoch: u64) -> Result<()> {
        if epoch > self.commit_epoch() {
            return Err(Error::TxnState(format!(
                "epoch {epoch} has not been allocated (latest is {})",
                self.commit_epoch()
            )));
        }
        if self.epoch_gate().durable() < epoch {
            // The epoch's group may still be queued behind a leader sitting
            // in a long collection window; drain instead of sleeping it
            // out. (FIFO: draining everything pending covers `epoch`.)
            self.flush_commit_queue()?;
        }
        self.epoch_gate().wait_for(epoch)
    }

    /// Synchronously make every acknowledged commit durable: drain the
    /// commit queue, force a physical flush+sync of the log (regardless of
    /// [`SyncPolicy`](crate::wal::SyncPolicy)), and wait for the watermark
    /// to cover everything allocated before the call. The client-side
    /// "final barrier" of an asynchronous bulk load. No-op on a
    /// non-durable database.
    pub fn sync_now(&self) -> Result<()> {
        if !self.is_durable() {
            return Ok(());
        }
        let target = self.commit_epoch();
        self.flush_commit_queue()?;
        {
            let mut wal = self.wal_lock();
            if let Some(w) = wal.as_mut() {
                if let Err(e) = w.force_sync() {
                    self.epoch_gate().fail(&e.to_string());
                    return Err(e);
                }
            }
        }
        self.wait_for_epoch(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_monotone() {
        let g = EpochGate::default();
        g.publish(5);
        g.publish(3); // stale publication from a slower leader
        assert_eq!(g.durable(), 5);
        g.publish(9);
        assert_eq!(g.durable(), 9);
    }

    #[test]
    fn wait_returns_for_already_durable_epochs() {
        let g = EpochGate::default();
        g.publish(4);
        g.wait_for(0).unwrap();
        g.wait_for(4).unwrap();
    }

    #[test]
    fn fail_wakes_waiters_with_durability_lost() {
        use std::sync::Arc;
        let g = Arc::new(EpochGate::default());
        g.publish(2);
        let waiter = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.wait_for(3))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.fail("disk full");
        let r = waiter.join().unwrap();
        assert!(matches!(r, Err(Error::DurabilityLost(_))), "{r:?}");
        // epochs at or below the watermark are still fine
        g.wait_for(2).unwrap();
    }

    #[test]
    fn recover_clears_failure_and_raises_watermark() {
        let g = EpochGate::default();
        g.publish(1);
        g.fail("boom");
        assert!(g.wait_for(2).is_err());
        g.recover(7);
        g.wait_for(7).unwrap();
        assert_eq!(g.durable(), 7);
    }
}
