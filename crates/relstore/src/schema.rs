//! Table schemas: column definitions, constraints, and name lookup.

use crate::error::{Error, Result};
use crate::value::{Value, ValueType};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (case-preserved; lookups are case-insensitive like MySQL).
    pub name: String,
    /// Scalar type.
    pub ty: ValueType,
    /// If false, NULL is rejected.
    pub nullable: bool,
    /// For VARCHAR(n): maximum length in bytes.
    pub max_len: Option<usize>,
    /// Default value used when an INSERT omits the column.
    pub default: Option<Value>,
    /// AUTO_INCREMENT: on insert of NULL/omitted, assign the next counter
    /// value. Only meaningful for INTEGER columns.
    pub auto_increment: bool,
}

impl ColumnDef {
    /// A non-null column with no default.
    pub fn required(name: &str, ty: ValueType) -> ColumnDef {
        ColumnDef {
            name: name.to_owned(),
            ty,
            nullable: false,
            max_len: None,
            default: None,
            auto_increment: false,
        }
    }

    /// A nullable column with no default.
    pub fn nullable(name: &str, ty: ValueType) -> ColumnDef {
        ColumnDef { nullable: true, ..ColumnDef::required(name, ty) }
    }

    /// An INTEGER AUTO_INCREMENT column (the id column idiom).
    pub fn auto_id(name: &str) -> ColumnDef {
        ColumnDef { auto_increment: true, ..ColumnDef::required(name, ValueType::Int) }
    }

    /// Validate and coerce a value destined for this column.
    pub fn check(&self, v: Value) -> Result<Value> {
        if v.is_null() {
            if self.nullable || self.auto_increment {
                return Ok(Value::Null);
            }
            return Err(Error::NullViolation(self.name.clone()));
        }
        if !v.fits(self.ty) {
            return Err(Error::TypeMismatch {
                column: self.name.clone(),
                expected: self.ty,
                got: v.value_type().expect("non-null"),
            });
        }
        if let (Some(max), Value::Str(s)) = (self.max_len, &v) {
            if s.len() > max {
                return Err(Error::StringTooLong {
                    column: self.name.clone(),
                    max,
                    got: s.len(),
                });
            }
        }
        Ok(v.coerce(self.ty))
    }
}

/// Schema of a table: ordered columns plus the primary key.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indices (into `columns`) of the primary-key columns; empty means no
    /// declared primary key (a hidden row id still identifies rows).
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Build a schema, checking column-name uniqueness.
    pub fn new(name: &str, columns: Vec<ColumnDef>, primary_key_cols: &[&str]) -> Result<TableSchema> {
        let mut schema =
            TableSchema { name: name.to_owned(), columns, primary_key: Vec::new() };
        for i in 0..schema.columns.len() {
            for j in (i + 1)..schema.columns.len() {
                if schema.columns[i].name.eq_ignore_ascii_case(&schema.columns[j].name) {
                    return Err(Error::ExecError(format!(
                        "duplicate column `{}` in table `{name}`",
                        schema.columns[i].name
                    )));
                }
            }
        }
        for pk in primary_key_cols {
            let idx = schema.column_index(pk)?;
            schema.primary_key.push(idx);
        }
        Ok(schema)
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::NoSuchColumn(format!("{}.{}", self.name, name)))
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Result<&ColumnDef> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All column names, in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::auto_id("id"),
                ColumnDef::required("name", ValueType::Str),
                ColumnDef::nullable("score", ValueType::Float),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("NAME").unwrap(), 1);
        assert_eq!(s.column_index("Id").unwrap(), 0);
        assert!(s.column_index("missing").is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![ColumnDef::auto_id("id"), ColumnDef::required("ID", ValueType::Str)],
            &[],
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_pk_rejected() {
        let err = TableSchema::new("t", vec![ColumnDef::auto_id("id")], &["nope"]);
        assert!(err.is_err());
    }

    #[test]
    fn check_null_and_types() {
        let s = schema();
        let name = s.column("name").unwrap();
        assert!(name.check(Value::Null).is_err());
        assert!(name.check(Value::Int(3)).is_err());
        assert_eq!(name.check(Value::from("x")).unwrap(), Value::from("x"));
        let score = s.column("score").unwrap();
        assert_eq!(score.check(Value::Null).unwrap(), Value::Null);
        // int widens to float
        assert_eq!(score.check(Value::Int(2)).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn check_varchar_limit() {
        let col = ColumnDef {
            max_len: Some(3),
            ..ColumnDef::required("s", ValueType::Str)
        };
        assert!(col.check(Value::from("abc")).is_ok());
        assert!(matches!(
            col.check(Value::from("abcd")),
            Err(Error::StringTooLong { .. })
        ));
    }
}
