//! SQL tokenizer.

use crate::error::{Error, Result};

/// A lexed token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub at: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier or keyword (`files`, `SELECT`). Keyword-ness is
    /// decided by the parser; the lexer just uppercases a copy for matching.
    Ident(String),
    /// Back-quoted identifier (`` `weird name` ``) — never a keyword.
    QuotedIdent(String),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `?` parameter placeholder.
    Param,
    /// Punctuation / operator.
    Punct(Punct),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `*`
    Star,
}

/// Tokenize a SQL statement.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let at = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // -- line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token { kind: TokenKind::Punct(Punct::LParen), at });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::Punct(Punct::RParen), at });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Punct(Punct::Comma), at });
                i += 1;
            }
            '.' => {
                out.push(Token { kind: TokenKind::Punct(Punct::Dot), at });
                i += 1;
            }
            ';' => {
                out.push(Token { kind: TokenKind::Punct(Punct::Semi), at });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Punct(Punct::Star), at });
                i += 1;
            }
            '?' => {
                out.push(Token { kind: TokenKind::Param, at });
                i += 1;
            }
            '=' => {
                out.push(Token { kind: TokenKind::Punct(Punct::Eq), at });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Punct(Punct::Ne), at });
                    i += 2;
                } else {
                    return Err(Error::LexError { at, msg: "lone `!`".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token { kind: TokenKind::Punct(Punct::Le), at });
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token { kind: TokenKind::Punct(Punct::Ne), at });
                    i += 2;
                }
                _ => {
                    out.push(Token { kind: TokenKind::Punct(Punct::Lt), at });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Punct(Punct::Ge), at });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Punct(Punct::Gt), at });
                    i += 1;
                }
            }
            '\'' => {
                // string literal; '' escapes a quote
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::LexError { at, msg: "unterminated string".into() })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // copy one UTF-8 char
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), at });
            }
            '`' => {
                let start = i + 1;
                let end = input[start..]
                    .find('`')
                    .ok_or(Error::LexError { at, msg: "unterminated quoted identifier".into() })?;
                out.push(Token {
                    kind: TokenKind::QuotedIdent(input[start..start + end].to_owned()),
                    at,
                });
                i = start + end + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| Error::LexError { at, msg: format!("bad float `{text}`") })?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| Error::LexError { at, msg: format!("bad integer `{text}`") })?,
                    )
                };
                out.push(Token { kind, at });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token { kind: TokenKind::Ident(input[start..i].to_owned()), at });
            }
            other => {
                return Err(Error::LexError { at, msg: format!("unexpected character `{other}`") })
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT * FROM t WHERE a = 1"),
            vec![
                Ident("SELECT".into()),
                Punct(super::Punct::Star),
                Ident("FROM".into()),
                Ident("t".into()),
                Ident("WHERE".into()),
                Ident("a".into()),
                Punct(super::Punct::Eq),
                Int(1),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
        assert_eq!(kinds("'héllo'"), vec![TokenKind::Str("héllo".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("4.5"), vec![TokenKind::Float(4.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("1.5e-2"), vec![TokenKind::Float(0.015)]);
        // `1.x` lexes as Int Dot Ident (qualified-name digits never occur,
        // but the lexer must not panic)
        assert_eq!(kinds("1.")[0], TokenKind::Int(1));
    }

    #[test]
    fn comparison_operators() {
        use Punct::*;
        let ks = kinds("< <= > >= <> != =");
        let ps: Vec<Punct> = ks
            .into_iter()
            .map(|k| match k {
                TokenKind::Punct(p) => p,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ps, vec![Lt, Le, Gt, Ge, Ne, Ne, Eq]);
    }

    #[test]
    fn comments_and_params() {
        assert_eq!(
            kinds("a -- comment\n ?"),
            vec![TokenKind::Ident("a".into()), TokenKind::Param]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(kinds("`weird name`"), vec![TokenKind::QuotedIdent("weird name".into())]);
        assert!(lex("`open").is_err());
    }
}
