//! Statement AST produced by the SQL parser.

use crate::predicate::Expr;
use crate::value::ValueType;

/// A column declaration inside CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// VARCHAR length limit, if declared.
    pub max_len: Option<usize>,
    /// NOT NULL given.
    pub not_null: bool,
    /// Inline PRIMARY KEY given.
    pub primary_key: bool,
    /// Inline UNIQUE given.
    pub unique: bool,
    /// AUTO_INCREMENT given.
    pub auto_increment: bool,
    /// DEFAULT literal, if given.
    pub default: Option<crate::value::Value>,
}

/// One item in a SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A column reference (optionally aliased).
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        column: String,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// `COUNT(*)`, `COUNT(col)`, `MIN(col)`, `MAX(col)`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Aggregated column; `None` means `*` (COUNT only).
        column: Option<(Option<String>, String)>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT
    Count,
    /// MIN
    Min,
    /// MAX
    Max,
}

/// A table reference in FROM, with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (`FROM t a` or `FROM t AS a`).
    pub alias: Option<String>,
}

/// One `JOIN t ON expr` clause (inner joins only).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined table.
    pub table: TableRef,
    /// ON condition.
    pub on: Expr,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// True for DESC.
    pub desc: bool,
}

/// SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// First FROM table.
    pub from: TableRef,
    /// INNER JOINs, in order.
    pub joins: Vec<JoinClause>,
    /// WHERE clause.
    pub where_clause: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// OFFSET row count.
    pub offset: Option<usize>,
}

/// Any SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column declarations.
        columns: Vec<ColumnSpec>,
        /// Table-level PRIMARY KEY (col, ...), if given.
        primary_key: Vec<String>,
        /// IF NOT EXISTS given.
        if_not_exists: bool,
    },
    /// CREATE [UNIQUE] INDEX name ON table (cols).
    CreateIndex {
        /// Index name.
        name: String,
        /// Target table.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// UNIQUE given.
        unique: bool,
    },
    /// DROP TABLE name.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS given.
        if_exists: bool,
    },
    /// DROP INDEX name ON table.
    DropIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
    },
    /// INSERT INTO t (cols) VALUES (...), (...).
    Insert {
        /// Target table.
        table: String,
        /// Column list; empty means "all columns in schema order".
        columns: Vec<String>,
        /// Row value expressions (literals / params only).
        rows: Vec<Vec<Expr>>,
    },
    /// SELECT.
    Select(Select),
    /// UPDATE t SET col = expr, ... [WHERE].
    Update {
        /// Target table.
        table: String,
        /// (column, value expression) pairs.
        sets: Vec<(String, Expr)>,
        /// WHERE clause.
        where_clause: Option<Expr>,
    },
    /// DELETE FROM t [WHERE].
    Delete {
        /// Target table.
        table: String,
        /// WHERE clause.
        where_clause: Option<Expr>,
    },
    /// BEGIN [TRANSACTION].
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}
