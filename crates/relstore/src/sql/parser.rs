//! Recursive-descent SQL parser.

use crate::error::{Error, Result};
use crate::predicate::{CmpOp, Expr};
use crate::sql::ast::*;
use crate::sql::lexer::{lex, Punct, Token, TokenKind};
use crate::value::{Date, DateTime, Time, Value, ValueType};

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0, depth: 0 };
    let stmt = p.statement()?;
    p.eat_punct(Punct::Semi);
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Maximum expression nesting. The parser recurses per `(`/`NOT`, so
/// untrusted input (SOAP clients hand the service raw query strings)
/// could otherwise overflow the stack instead of returning an error.
const MAX_EXPR_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
    depth: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error::ParseError { at: self.pos, msg: msg.into() }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.err(format!("expression nested deeper than {MAX_EXPR_DEPTH}")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// If the next token is the keyword `kw` (case-insensitive), consume it.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(TokenKind::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&TokenKind::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p:?}`")))
        }
    }

    /// Is the next token the keyword `kw` (without consuming)?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            Some(TokenKind::QuotedIdent(s)) => Ok(s),
            _ => Err(self.err("expected identifier")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            self.expect_kw("INDEX")?;
            return self.create_index(unique);
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                let if_exists = self.if_exists()?;
                let name = self.ident()?;
                return Ok(Statement::DropTable { name, if_exists });
            }
            self.expect_kw("INDEX")?;
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            return Ok(Statement::DropIndex { name, table });
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("BEGIN") || self.eat_kw("START") {
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        Err(self.err("expected a statement keyword"))
    }

    fn if_exists(&mut self) -> Result<bool> {
        if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_punct(Punct::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::RParen)?;
            } else {
                columns.push(self.column_spec()?);
            }
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(Statement::CreateTable { name, columns, primary_key, if_not_exists })
    }

    fn column_spec(&mut self) -> Result<ColumnSpec> {
        let name = self.ident()?;
        let ty_name = self.ident()?;
        let (ty, mut max_len) = match ty_name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => (ValueType::Int, None),
            "DOUBLE" | "FLOAT" | "REAL" => (ValueType::Float, None),
            "VARCHAR" | "CHAR" => (ValueType::Str, Some(255)),
            "TEXT" => (ValueType::Str, None),
            "BOOLEAN" | "BOOL" => (ValueType::Bool, None),
            "DATE" => (ValueType::Date, None),
            "TIME" => (ValueType::Time, None),
            "DATETIME" | "TIMESTAMP" => (ValueType::DateTime, None),
            other => return Err(self.err(format!("unknown type `{other}`"))),
        };
        if self.eat_punct(Punct::LParen) {
            match self.next() {
                Some(TokenKind::Int(n)) if n > 0 => max_len = Some(n as usize),
                _ => return Err(self.err("expected length after `(`")),
            }
            self.expect_punct(Punct::RParen)?;
        }
        let mut spec = ColumnSpec {
            name,
            ty,
            max_len: if ty == ValueType::Str { max_len } else { None },
            not_null: false,
            primary_key: false,
            unique: false,
            auto_increment: false,
            default: None,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                spec.not_null = true;
            } else if self.eat_kw("NULL") {
                // explicit NULL permission: default anyway
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                spec.primary_key = true;
            } else if self.eat_kw("UNIQUE") {
                spec.unique = true;
            } else if self.eat_kw("AUTO_INCREMENT") || self.eat_kw("AUTOINCREMENT") {
                spec.auto_increment = true;
            } else if self.eat_kw("DEFAULT") {
                spec.default = Some(self.literal_value()?);
            } else {
                break;
            }
        }
        Ok(spec)
    }

    fn create_index(&mut self, unique: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(Statement::CreateIndex { name, table, columns, unique })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_punct(Punct::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct(Punct::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
            rows.push(row);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let mut alias = None;
        if self.eat_kw("AS") {
            alias = Some(self.ident()?);
        } else if let Some(TokenKind::Ident(s)) = self.peek() {
            // bare alias, unless it's a clause keyword
            const CLAUSES: &[&str] = &[
                "WHERE", "ORDER", "LIMIT", "OFFSET", "JOIN", "INNER", "ON", "GROUP", "SET",
            ];
            if !CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                alias = Some(self.ident()?);
            }
        }
        Ok(TableRef { table, alias })
    }

    fn select(&mut self) -> Result<Select> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
            } else if !self.eat_kw("JOIN") {
                break;
            }
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(JoinClause { table, on });
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let (table, column) = self.column_name()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { table, column, desc });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.usize_lit()?);
            if self.eat_punct(Punct::Comma) {
                // MySQL `LIMIT offset, count`
                offset = limit;
                limit = Some(self.usize_lit()?);
            }
        }
        if self.eat_kw("OFFSET") {
            offset = Some(self.usize_lit()?);
        }
        Ok(Select { items, from, joins, where_clause, order_by, limit, offset })
    }

    fn usize_lit(&mut self) -> Result<usize> {
        match self.next() {
            Some(TokenKind::Int(n)) if n >= 0 => Ok(n as usize),
            _ => Err(self.err("expected a non-negative integer")),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_punct(Punct::Star) {
            return Ok(SelectItem::Wildcard);
        }
        for (kw, func) in
            [("COUNT", AggFunc::Count), ("MIN", AggFunc::Min), ("MAX", AggFunc::Max)]
        {
            if self.peek_kw(kw)
                && self.tokens.get(self.pos + 1).map(|t| &t.kind)
                    == Some(&TokenKind::Punct(Punct::LParen))
            {
                self.pos += 2; // keyword + (
                let column = if self.eat_punct(Punct::Star) {
                    if func != AggFunc::Count {
                        return Err(self.err("only COUNT accepts `*`"));
                    }
                    None
                } else {
                    Some(self.column_name()?)
                };
                self.expect_punct(Punct::RParen)?;
                let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
                return Ok(SelectItem::Aggregate { func, column, alias });
            }
        }
        let (table, column) = self.column_name()?;
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
        Ok(SelectItem::Column { table, column, alias })
    }

    fn column_name(&mut self) -> Result<(Option<String>, String)> {
        let first = self.ident()?;
        if self.eat_punct(Punct::Dot) {
            Ok((Some(first), self.ident()?))
        } else {
            Ok((None, first))
        }
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_punct(Punct::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, where_clause })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, where_clause })
    }

    // ----- expressions -----

    /// Entry: OR-level.
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            self.enter()?;
            let e = self.not_expr();
            self.depth -= 1;
            Ok(Expr::Not(Box::new(e?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.operand()?;
        // postfix predicates
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("LIKE") {
            let pat = self.operand()?;
            let like = Expr::Like(Box::new(left), Box::new(pat));
            return Ok(if negated { Expr::Not(Box::new(like)) } else { like });
        }
        if self.eat_kw("IN") {
            self.expect_punct(Punct::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.operand()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
            let inl = Expr::InList(Box::new(left), list);
            return Ok(if negated { Expr::Not(Box::new(inl)) } else { inl });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.operand()?;
            self.expect_kw("AND")?;
            let hi = self.operand()?;
            let range = Expr::And(
                Box::new(Expr::Cmp(CmpOp::Ge, Box::new(left.clone()), Box::new(lo))),
                Box::new(Expr::Cmp(CmpOp::Le, Box::new(left), Box::new(hi))),
            );
            return Ok(if negated { Expr::Not(Box::new(range)) } else { range });
        }
        if negated {
            return Err(self.err("expected LIKE, IN or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(TokenKind::Punct(Punct::Eq)) => Some(CmpOp::Eq),
            Some(TokenKind::Punct(Punct::Ne)) => Some(CmpOp::Ne),
            Some(TokenKind::Punct(Punct::Lt)) => Some(CmpOp::Lt),
            Some(TokenKind::Punct(Punct::Le)) => Some(CmpOp::Le),
            Some(TokenKind::Punct(Punct::Gt)) => Some(CmpOp::Gt),
            Some(TokenKind::Punct(Punct::Ge)) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.operand()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn operand(&mut self) -> Result<Expr> {
        if self.eat_punct(Punct::LParen) {
            self.enter()?;
            let e = self.expr();
            self.depth -= 1;
            let e = e?;
            self.expect_punct(Punct::RParen)?;
            return Ok(e);
        }
        match self.peek() {
            Some(TokenKind::Param) => {
                self.pos += 1;
                let i = self.params;
                self.params += 1;
                Ok(Expr::Param(i))
            }
            Some(TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_)) => {
                Ok(Expr::Literal(self.literal_value()?))
            }
            Some(TokenKind::Ident(s)) => {
                let up = s.to_ascii_uppercase();
                match up.as_str() {
                    "NULL" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Null))
                    }
                    "TRUE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Bool(true)))
                    }
                    "FALSE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Bool(false)))
                    }
                    "DATE" | "TIME" | "TIMESTAMP" | "DATETIME"
                        if matches!(
                            self.tokens.get(self.pos + 1).map(|t| &t.kind),
                            Some(TokenKind::Str(_))
                        ) =>
                    {
                        self.pos += 1;
                        let s = match self.next() {
                            Some(TokenKind::Str(s)) => s,
                            _ => unreachable!("peeked"),
                        };
                        let v = match up.as_str() {
                            "DATE" => Value::Date(Date::parse(&s)?),
                            "TIME" => Value::Time(Time::parse(&s)?),
                            _ => Value::DateTime(DateTime::parse(&s)?),
                        };
                        Ok(Expr::Literal(v))
                    }
                    _ => {
                        let (table, column) = self.column_name()?;
                        Ok(Expr::Column { table, column })
                    }
                }
            }
            Some(TokenKind::QuotedIdent(_)) => {
                let (table, column) = self.column_name()?;
                Ok(Expr::Column { table, column })
            }
            _ => Err(self.err("expected an operand")),
        }
    }

    fn literal_value(&mut self) -> Result<Value> {
        match self.next() {
            Some(TokenKind::Int(n)) => Ok(Value::Int(n)),
            Some(TokenKind::Float(x)) => Ok(Value::Float(x)),
            Some(TokenKind::Str(s)) => Ok(Value::from(s)),
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            _ => Err(self.err("expected a literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let s = parse(
            "CREATE TABLE IF NOT EXISTS logical_files (
                id INTEGER PRIMARY KEY AUTO_INCREMENT,
                name VARCHAR(255) NOT NULL UNIQUE,
                valid BOOLEAN DEFAULT TRUE,
                created DATETIME,
                size DOUBLE
            )",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns, primary_key, if_not_exists } => {
                assert_eq!(name, "logical_files");
                assert!(if_not_exists);
                assert!(primary_key.is_empty());
                assert_eq!(columns.len(), 5);
                assert!(columns[0].primary_key && columns[0].auto_increment);
                assert_eq!(columns[1].max_len, Some(255));
                assert!(columns[1].not_null && columns[1].unique);
                assert_eq!(columns[2].default, Some(Value::Bool(true)));
                assert_eq!(columns[3].ty, ValueType::DateTime);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_table_level_pk() {
        let s = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))").unwrap();
        match s {
            Statement::CreateTable { primary_key, .. } => {
                assert_eq!(primary_key, vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_create_index() {
        let s = parse("CREATE UNIQUE INDEX by_name ON files (name, version)").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "by_name".into(),
                table: "files".into(),
                columns: vec!["name".into(), "version".into()],
                unique: true,
            }
        );
    }

    #[test]
    fn parse_insert_multi_row_params() {
        let s = parse("INSERT INTO t (a, b) VALUES (?, 'x'), (2, ?)").unwrap();
        match s {
            Statement::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Expr::Param(0));
                assert_eq!(rows[1][1], Expr::Param(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_with_everything() {
        let s = parse(
            "SELECT f.name, COUNT(*) AS n FROM files f \
             JOIN attrs a ON f.id = a.file_id \
             WHERE a.name = 'channel' AND (a.value > 3.5 OR f.valid = TRUE) \
             ORDER BY f.name DESC LIMIT 10 OFFSET 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.from.alias.as_deref(), Some("f"));
                assert_eq!(sel.joins.len(), 1);
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].desc);
                assert_eq!(sel.limit, Some(10));
                assert_eq!(sel.offset, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_predicates() {
        let s = parse("SELECT * FROM t WHERE a LIKE 'x%' AND b IS NOT NULL AND c IN (1, 2) AND d BETWEEN 1 AND 5 AND e NOT LIKE 'y%'").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let w = sel.where_clause.unwrap();
        // nested AND tree: 4 plain predicates plus BETWEEN desugared
        // into (d >= 1 AND d <= 5) = 6 leaves total
        fn count_leaves(e: &Expr) -> usize {
            match e {
                Expr::And(a, b) => count_leaves(a) + count_leaves(b),
                _ => 1,
            }
        }
        assert_eq!(count_leaves(&w), 6);
    }

    #[test]
    fn parse_typed_literals() {
        let s = parse("SELECT * FROM t WHERE d = DATE '2003-11-15' AND ts < TIMESTAMP '2003-11-15 08:00:00'").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let w = sel.where_clause.unwrap();
        let Expr::And(a, b) = w else { panic!() };
        assert!(matches!(*a, Expr::Cmp(CmpOp::Eq, _, ref r) if matches!(**r, Expr::Literal(Value::Date(_)))));
        assert!(matches!(*b, Expr::Cmp(CmpOp::Lt, _, ref r) if matches!(**r, Expr::Literal(Value::DateTime(_)))));
    }

    #[test]
    fn parse_update_delete_txn() {
        assert!(matches!(
            parse("UPDATE t SET a = 1, b = ? WHERE c = 2").unwrap(),
            Statement::Update { ref sets, .. } if sets.len() == 2
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("START TRANSACTION;").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELEC * FROM t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra tokens here").is_err());
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse("SELECT MIN(*) FROM t").is_err());
    }

    #[test]
    fn mysql_limit_offset_comma_form() {
        let Statement::Select(sel) = parse("SELECT * FROM t LIMIT 5, 10").unwrap() else {
            panic!()
        };
        assert_eq!(sel.offset, Some(5));
        assert_eq!(sel.limit, Some(10));
    }
}
