//! SQL front end: lexer, AST, and recursive-descent parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::Statement;
pub use parser::parse;
