//! Rows and row identifiers.

use crate::value::Value;

/// Stable identifier of a row within one table (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

/// One stored row: values in schema column order.
pub type Row = Vec<Value>;

/// A row paired with its id, as returned by scans.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRow {
    /// Stable row id.
    pub id: RowId,
    /// Column values in schema order.
    pub values: Row,
}
