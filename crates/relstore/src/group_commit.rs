//! Cross-transaction group commit: one `fsync` for many transactions.
//!
//! With [`Durability::Always`](crate::db::Durability::Always) every
//! committed transaction pays its own `sync_data`, so N concurrent
//! committers issue N disk syncs back to back — the write-rate ceiling
//! the paper's Figures 5–8 run into once durability is real. Under
//! [`Durability::Group`](crate::db::Durability::Group) committers instead
//! pass through this queue:
//!
//! 1. A committing session encodes its WAL group (`Begin, Stmt…, Commit`
//!    frames) *outside* any lock, enqueues the bytes with a ticket, and
//!    parks on the queue's condvar.
//! 2. The first committer to find no active leader **becomes the
//!    leader**: it waits up to `max_wait` for the queue to reach
//!    `max_batch` groups (new arrivals poke the condvar), then drains up
//!    to `max_batch` entries, appends them all in one buffered write, and
//!    issues a **single** `sync_data` under the WAL mutex.
//! 3. The leader publishes one result per drained ticket, steps down, and
//!    wakes everyone. Woken followers whose ticket resolved return it;
//!    a follower whose ticket is still queued (the drained batch was
//!    full) takes over as the next leader.
//!
//! Even with `max_wait = 0` batching emerges naturally: while a leader is
//! inside `sync_data`, every other committer enqueues behind it, and the
//! next leader drains them all — the classic self-clocking group commit.
//! `max_wait` only adds an explicit collection window on top.
//!
//! Correctness leans on the barrier layer ([`crate::lock`]): a
//! transaction's exclusive table barriers are held until its commit
//! *returns* — i.e. until its group is durable — so two transactions
//! whose WAL replay order could matter are never in the queue at the same
//! time, and readers cannot observe a transaction whose group has not
//! reached the disk. Recovery needs no changes: each group in a batched
//! physical write is self-delimiting, so a torn tail discards exactly the
//! groups missing their Commit frame (see `crates/mcs/tests/
//! crash_atomicity.rs` for the byte-granular proof).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::db::Database;
use crate::error::{Error, Result};

/// The shared commit queue. One per [`Database`]; cheap when unused
/// (a transaction under `Durability::Always` never touches it).
///
/// Uses `std::sync` primitives rather than the vendored `parking_lot`
/// stub because the protocol needs a condvar; poisoning is recovered the
/// same way the stub does (a panicking committer must not wedge commits).
#[derive(Debug, Default)]
pub(crate) struct GroupCommitQueue {
    state: Mutex<QueueState>,
    /// Single condvar for both roles: followers wait on it for their
    /// result, a collecting leader waits on it for the queue to fill.
    cond: Condvar,
}

impl GroupCommitQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
struct QueueState {
    /// Encoded groups awaiting a leader, FIFO in ticket order.
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Results for drained tickets; each follower removes its own entry,
    /// so the map never outgrows one batch.
    results: HashMap<u64, Option<String>>,
    next_ticket: u64,
    leader_active: bool,
}

impl Database {
    /// Enqueue an encoded group and return its ticket. The queue is FIFO,
    /// so from this point the group's position in the log relative to
    /// every other enqueued group is fixed — the caller may release its
    /// transaction barriers before redeeming the ticket.
    pub(crate) fn group_enqueue(&self, group: Vec<u8>) -> u64 {
        let q = self.commit_queue();
        let mut st = q.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.pending.push_back((ticket, group));
        // A leader may be sitting in its collection window — let it see
        // the new entry (also wakes followers, who harmlessly re-check).
        q.cond.notify_all();
        ticket
    }

    /// Park until the ticket's group is durable: lead if no leader is
    /// active, otherwise follow (wait to be woken with a result).
    pub(crate) fn group_commit_wait(
        &self,
        ticket: u64,
        max_wait: Duration,
        max_batch: usize,
    ) -> Result<()> {
        let q = self.commit_queue();
        let mut st = q.lock();
        loop {
            if let Some(outcome) = st.results.remove(&ticket) {
                return match outcome {
                    None => Ok(()),
                    Some(msg) => Err(Error::ExecError(msg)),
                };
            }
            if !st.leader_active {
                st.leader_active = true;
                drop(st);
                self.lead_batch(max_wait, max_batch.max(1));
                st = q.lock();
            } else {
                st = q.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Leader role: collect, write, sync, publish. `leader_active` is
    /// already claimed by the caller; this always releases it.
    fn lead_batch(&self, max_wait: Duration, max_batch: usize) {
        let q = self.commit_queue();
        let deadline = Instant::now() + max_wait;
        let batch: Vec<(u64, Vec<u8>)> = {
            let mut st = q.lock();
            while st.pending.len() < max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, timeout) = q
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                if timeout.timed_out() {
                    break;
                }
            }
            let n = st.pending.len().min(max_batch);
            st.pending.drain(..n).collect()
        };
        let result = if batch.is_empty() {
            Ok(())
        } else {
            let mut wal = self.wal_lock();
            match wal.as_mut() {
                Some(w) => w.append_batch(batch.iter().map(|(_, g)| g.as_slice())),
                // No WAL attached (never detaches once attached; this arm
                // is unreachable in practice): nothing to persist.
                None => Ok(()),
            }
        };
        let err = result.err().map(|e| e.to_string());
        let mut st = q.lock();
        for (ticket, _) in &batch {
            st.results.insert(*ticket, err.clone());
        }
        st.leader_active = false;
        q.cond.notify_all();
    }

    /// Drain the queue completely (checkpoint calls this before
    /// truncating the log, so queued groups land in the old log that the
    /// snapshot supersedes). Waits out any active leader.
    pub(crate) fn flush_commit_queue(&self) -> Result<()> {
        let q = self.commit_queue();
        loop {
            {
                let mut st = q.lock();
                while st.leader_active {
                    st = q.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                if st.pending.is_empty() {
                    return Ok(());
                }
                st.leader_active = true;
            }
            self.lead_batch(Duration::ZERO, usize::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use crate::db::Durability;
    use crate::lock::Access;
    use crate::value::Value;
    use crate::wal::SyncPolicy;
    use crate::Database;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "relstore-gc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn grouped() -> Durability {
        Durability::Group { max_wait: Duration::from_millis(2), max_batch: 64 }
    }

    #[test]
    fn single_committer_degenerates_to_batch_of_one() {
        let dir = tmpdir("single");
        {
            let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, grouped()).unwrap();
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, v INTEGER)", &[])
                .unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
                s.execute("INSERT INTO t (v) VALUES (2)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            assert_eq!(db.wal_stats().group_commit_count(), 1);
            assert_eq!(db.wal_stats().batch_count(), 1);
        } // crash
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_transactions_skip_the_queue() {
        let dir = tmpdir("empty");
        let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, grouped()).unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        let before = db.wal_stats().sync_count();
        db.transaction(&[("t", Access::Read)], |s| {
            s.execute("SELECT * FROM t", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        assert_eq!(db.wal_stats().sync_count(), before, "read-only commit must not sync");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_flushes_queued_groups() {
        let dir = tmpdir("ckpt");
        {
            let db = Database::open_durable_with(&dir, SyncPolicy::OsBuffered, grouped()).unwrap();
            db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (7)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            db.checkpoint().unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (8)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_policy_can_flip_at_runtime() {
        let dir = tmpdir("flip");
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.durability(), Durability::Always);
        db.set_durability(grouped());
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        db.set_durability(Durability::Always);
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (2)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        assert_eq!(db.wal_stats().group_commit_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Many concurrent committers on disjoint tables share batches: the
    /// sync count stays well under the transaction count.
    #[test]
    fn concurrent_commits_share_syncs() {
        let dir = tmpdir("share");
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Group { max_wait: Duration::from_millis(10), max_batch: 4 },
        )
        .unwrap();
        for i in 0..4 {
            db.execute(&format!("CREATE TABLE t{i} (v INTEGER)"), &[]).unwrap();
        }
        let before = db.wal_stats().sync_count();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let t = format!("t{i}");
                    for v in 0..8 {
                        db.transaction(&[(t.as_str(), Access::Write)], |s| {
                            s.execute(&format!("INSERT INTO t{i} (v) VALUES ({v})"), &[])?;
                            Ok::<_, crate::Error>(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let syncs = db.wal_stats().sync_count() - before;
        assert!(syncs < 32, "32 transactions must share syncs, got {syncs}");
        for i in 0..4 {
            let n = db.query(&format!("SELECT COUNT(*) FROM t{i}"), &[]).unwrap().rows[0][0]
                .clone();
            assert_eq!(n, Value::Int(8));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
