//! Cross-transaction group commit: one `fsync` for many transactions.
//!
//! With [`Durability::Always`](crate::db::Durability::Always) every
//! committed transaction pays its own `sync_data`, so N concurrent
//! committers issue N disk syncs back to back — the write-rate ceiling
//! the paper's Figures 5–8 run into once durability is real. Under
//! [`Durability::Group`](crate::db::Durability::Group) committers instead
//! pass through this queue:
//!
//! 1. A committing session encodes its WAL group (`Begin, Stmt…, Commit`
//!    frames) *outside* any lock, enqueues the bytes with a ticket, and
//!    parks on the queue's condvar.
//! 2. The first committer to find no active leader **becomes the
//!    leader**: it waits up to `max_wait` for the queue to reach
//!    `max_batch` groups (new arrivals poke the condvar), then drains up
//!    to `max_batch` entries, appends them all in one buffered write, and
//!    issues a **single** `sync_data` under the WAL mutex.
//! 3. The leader publishes one result per drained ticket, steps down, and
//!    wakes everyone. Woken followers whose ticket resolved return it;
//!    a follower whose ticket is still queued (the drained batch was
//!    full) takes over as the next leader.
//!
//! Even with `max_wait = 0` batching emerges naturally: while a leader is
//! inside `sync_data`, every other committer enqueues behind it, and the
//! next leader drains them all — the classic self-clocking group commit.
//! `max_wait` only adds an explicit collection window on top.
//!
//! Correctness has two parts:
//!
//! * **Log order = execution order.** Conflicting operations are ordered
//!   by the barrier layer ([`crate::lock`]), and every path that can put
//!   bytes in the log fixes its position *while still holding its
//!   barriers*: a grouped commit enqueues before
//!   [`Database::transaction`](crate::db::Database::transaction) drops
//!   its barriers, and a direct append (an autocommit statement, or an
//!   `Always` commit after a runtime policy flip) first drains every
//!   queued group into the log — under the WAL mutex, via
//!   [`Database::append_after_queue`] — before writing its own record.
//!   The leader likewise drains the queue only while holding the WAL
//!   mutex, so drain-and-append is one critical section and a direct
//!   append can never land ahead of a group enqueued before it.
//! * **Visibility runs ahead of durability — deliberately.** A
//!   transaction's barriers are released as soon as its group is
//!   enqueued, *before* any `sync_data`: that is what lets the next
//!   conflicting transaction execute and join the batch while the
//!   leader's sync is in flight (otherwise contended tables would
//!   serialise into batches of one). The flip side is the standard
//!   early-lock-release anomaly: a concurrent **reader may observe a
//!   commit whose group is not yet on disk** and act on state that a
//!   crash would roll back. The committer itself is never lied to —
//!   `commit()` returns only after its group is durable — and callers
//!   that must not expose maybe-lost data to third parties should stay
//!   on [`Durability::Always`](crate::db::Durability::Always) (see
//!   DESIGN.md §7.1).
//!
//! Recovery needs no changes: each group in a batched physical write is
//! self-delimiting, so a torn tail discards exactly the groups missing
//! their Commit frame (see `crates/mcs/tests/crash_atomicity.rs` for the
//! byte-granular proof).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::db::Database;
use crate::error::{Error, Result};

/// The shared commit queue. One per [`Database`]; cheap when unused
/// (a transaction under `Durability::Always` never touches it).
///
/// Uses `std::sync` primitives rather than the vendored `parking_lot`
/// stub because the protocol needs a condvar; poisoning is recovered the
/// same way the stub does (a panicking committer must not wedge commits).
#[derive(Debug, Default)]
pub(crate) struct GroupCommitQueue {
    state: Mutex<QueueState>,
    /// Single condvar for both roles: followers wait on it for their
    /// result, a collecting leader waits on it for the queue to fill.
    cond: Condvar,
}

impl GroupCommitQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
struct QueueState {
    /// Encoded groups awaiting a leader, FIFO in ticket order.
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Results for drained tickets; each follower removes its own entry,
    /// so the map never outgrows one batch.
    results: HashMap<u64, Option<String>>,
    next_ticket: u64,
    leader_active: bool,
}

impl Database {
    /// Enqueue an encoded group and return its ticket. The queue is FIFO,
    /// so from this point the group's position in the log relative to
    /// every other enqueued group is fixed — the caller may release its
    /// transaction barriers before redeeming the ticket.
    pub(crate) fn group_enqueue(&self, group: Vec<u8>) -> u64 {
        let q = self.commit_queue();
        let mut st = q.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.pending.push_back((ticket, group));
        // A leader may be sitting in its collection window — let it see
        // the new entry (also wakes followers, who harmlessly re-check).
        q.cond.notify_all();
        ticket
    }

    /// Park until the ticket's group is durable: lead if no leader is
    /// active, otherwise follow (wait to be woken with a result).
    pub(crate) fn group_commit_wait(
        &self,
        ticket: u64,
        max_wait: Duration,
        max_batch: usize,
    ) -> Result<()> {
        let q = self.commit_queue();
        let mut st = q.lock();
        loop {
            if let Some(outcome) = st.results.remove(&ticket) {
                return match outcome {
                    None => Ok(()),
                    Some(msg) => Err(Error::ExecError(msg)),
                };
            }
            if !st.leader_active {
                st.leader_active = true;
                drop(st);
                self.lead_batch(max_wait, max_batch.max(1));
                st = q.lock();
            } else {
                st = q.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Leader role: collect, write, sync, publish. `leader_active` is
    /// already claimed by the caller; this always releases it.
    fn lead_batch(&self, max_wait: Duration, max_batch: usize) {
        let q = self.commit_queue();
        let deadline = Instant::now() + max_wait;
        // Collection window: wait (queue lock only, never the WAL mutex)
        // for the batch to fill; new arrivals poke the condvar. An empty
        // queue ends the window early — a direct appender has drained and
        // published everything (possibly including this leader's own
        // group), so there is nothing left to collect.
        {
            let mut st = q.lock();
            while !st.pending.is_empty() && st.pending.len() < max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, timeout) = q
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        // Drain only *after* taking the WAL mutex: drain-and-append must
        // be one critical section, or a direct append (autocommit
        // statement / `Always` commit) could slip between them and land
        // in the log ahead of an earlier-executed queued group. A direct
        // appender that won the WAL mutex has already drained (and
        // published) some prefix of this batch; what is left is still in
        // FIFO order.
        let mut wal = self.wal_lock();
        let batch: Vec<(u64, Vec<u8>)> = {
            let mut st = q.lock();
            let n = st.pending.len().min(max_batch);
            st.pending.drain(..n).collect()
        };
        let result = if batch.is_empty() {
            Ok(())
        } else {
            match wal.as_mut() {
                Some(w) => w.append_batch(batch.iter().map(|(_, g)| g.as_slice())),
                // No WAL attached (never detaches once attached; this arm
                // is unreachable in practice): nothing to persist.
                None => Ok(()),
            }
        };
        drop(wal);
        let err = result.err().map(|e| e.to_string());
        let mut st = q.lock();
        for (ticket, _) in &batch {
            st.results.insert(*ticket, err.clone());
        }
        st.leader_active = false;
        q.cond.notify_all();
    }

    /// The single ordering point for **direct** WAL appends (autocommit
    /// statements, `Durability::Always` commits): with the WAL mutex held
    /// (the `&mut WalWriter` proves it), drain every queued group into
    /// the log — in enqueue order, ahead of the caller's record — then
    /// run the caller's own append. Any group already enqueued belongs to
    /// a transaction that executed (and released its barriers) before the
    /// caller could, so its bytes must precede the caller's; skipping the
    /// drain would let recovery replay the two in the wrong order.
    ///
    /// The caller's `append` closure is expected to flush/sync, which
    /// covers the drained groups too; their waiting committers are
    /// published (woken with the combined result) after it returns.
    pub(crate) fn append_after_queue(
        &self,
        w: &mut crate::wal::WalWriter,
        append: impl FnOnce(&mut crate::wal::WalWriter) -> Result<()>,
    ) -> Result<()> {
        let drained: Vec<(u64, Vec<u8>)> = {
            let mut st = self.commit_queue().lock();
            st.pending.drain(..).collect()
        };
        let result = w
            .append_groups_unsynced(drained.iter().map(|(_, g)| g.as_slice()))
            .and_then(|_| append(w));
        if !drained.is_empty() {
            let err = result.as_ref().err().map(|e| e.to_string());
            let q = self.commit_queue();
            let mut st = q.lock();
            for (ticket, _) in &drained {
                st.results.insert(*ticket, err.clone());
            }
            // Wakes the drained groups' committers; also nudges a leader
            // sitting in its collection window to notice the empty queue.
            q.cond.notify_all();
        }
        result
    }

    /// Drain the queue completely (checkpoint calls this before
    /// truncating the log, so queued groups land in the old log that the
    /// snapshot supersedes). Waits out any active leader.
    pub(crate) fn flush_commit_queue(&self) -> Result<()> {
        let q = self.commit_queue();
        loop {
            {
                let mut st = q.lock();
                while st.leader_active {
                    st = q.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                if st.pending.is_empty() {
                    return Ok(());
                }
                st.leader_active = true;
            }
            self.lead_batch(Duration::ZERO, usize::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use crate::db::Durability;
    use crate::lock::Access;
    use crate::value::Value;
    use crate::wal::SyncPolicy;
    use crate::Database;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "relstore-gc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn grouped() -> Durability {
        Durability::Group { max_wait: Duration::from_millis(2), max_batch: 64 }
    }

    #[test]
    fn single_committer_degenerates_to_batch_of_one() {
        let dir = tmpdir("single");
        {
            let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, grouped()).unwrap();
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, v INTEGER)", &[])
                .unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
                s.execute("INSERT INTO t (v) VALUES (2)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            assert_eq!(db.wal_stats().group_commit_count(), 1);
            assert_eq!(db.wal_stats().batch_count(), 1);
        } // crash
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_transactions_skip_the_queue() {
        let dir = tmpdir("empty");
        let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, grouped()).unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        let before = db.wal_stats().sync_count();
        db.transaction(&[("t", Access::Read)], |s| {
            s.execute("SELECT * FROM t", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        assert_eq!(db.wal_stats().sync_count(), before, "read-only commit must not sync");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_flushes_queued_groups() {
        let dir = tmpdir("ckpt");
        {
            let db = Database::open_durable_with(&dir, SyncPolicy::OsBuffered, grouped()).unwrap();
            db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (7)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            db.checkpoint().unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (8)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_policy_can_flip_at_runtime() {
        let dir = tmpdir("flip");
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.durability(), Durability::Always);
        db.set_durability(grouped());
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        db.set_durability(Durability::Always);
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (2)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        assert_eq!(db.wal_stats().group_commit_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A conflicting autocommit statement runs while a grouped commit's
    /// bytes are still queued (the committer-leader is parked in a long
    /// collection window): the direct append must drain the queued group
    /// into the log *ahead* of its own record, or recovery replays the
    /// delete before the insert. Also proves the drain publishes the
    /// parked committer — nobody waits out the 5 s window.
    #[test]
    fn direct_append_drains_queued_groups_first() {
        let dir = tmpdir("order");
        {
            let db = Database::open_durable_with(
                &dir,
                SyncPolicy::EveryWrite,
                Durability::Group { max_wait: Duration::from_secs(5), max_batch: 64 },
            )
            .unwrap();
            db.execute("CREATE TABLE t (name VARCHAR(32))", &[]).unwrap();
            let started = std::time::Instant::now();
            let (in_txn, ready) = std::sync::mpsc::channel();
            let writer = {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    db.transaction(&[("t", Access::Write)], |s| {
                        s.execute("INSERT INTO t (name) VALUES ('from-txn')", &[])?;
                        in_txn.send(()).unwrap();
                        Ok::<_, crate::Error>(())
                    })
                    .unwrap();
                })
            };
            // Blocks on t's barrier until the transaction has enqueued its
            // group and released (enqueue happens under the barriers), so
            // this delete executes strictly after the insert — and must
            // also land after it in the log.
            ready.recv().unwrap();
            db.execute("DELETE FROM t WHERE name = 'from-txn'", &[]).unwrap();
            writer.join().unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(4),
                "committer stalled in the collection window instead of being \
                 published by the direct append"
            );
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0],
            Value::Int(0),
            "recovery replayed the autocommit delete ahead of the grouped insert"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping `Group` → `Always` at runtime while a group is still
    /// queued: the `Always` commit is a direct append and must push the
    /// queued group into the log ahead of itself.
    #[test]
    fn always_commit_after_flip_drains_queued_groups() {
        let dir = tmpdir("flip-order");
        {
            let db = Database::open_durable_with(
                &dir,
                SyncPolicy::EveryWrite,
                Durability::Group { max_wait: Duration::from_secs(5), max_batch: 64 },
            )
            .unwrap();
            db.execute("CREATE TABLE t (name VARCHAR(32))", &[]).unwrap();
            let (in_txn, ready) = std::sync::mpsc::channel();
            let writer = {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    db.transaction(&[("t", Access::Write)], |s| {
                        s.execute("INSERT INTO t (name) VALUES ('x')", &[])?;
                        in_txn.send(()).unwrap();
                        Ok::<_, crate::Error>(())
                    })
                    .unwrap();
                })
            };
            ready.recv().unwrap();
            db.set_durability(Durability::Always);
            // barrier-ordered after the insert; under Always it appends
            // directly, which must drain the queued insert group first
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("DELETE FROM t WHERE name = 'x'", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            writer.join().unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Many concurrent committers on disjoint tables share batches: the
    /// sync count stays well under the transaction count.
    #[test]
    fn concurrent_commits_share_syncs() {
        let dir = tmpdir("share");
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Group { max_wait: Duration::from_millis(10), max_batch: 4 },
        )
        .unwrap();
        for i in 0..4 {
            db.execute(&format!("CREATE TABLE t{i} (v INTEGER)"), &[]).unwrap();
        }
        let before = db.wal_stats().sync_count();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let t = format!("t{i}");
                    for v in 0..8 {
                        db.transaction(&[(t.as_str(), Access::Write)], |s| {
                            s.execute(&format!("INSERT INTO t{i} (v) VALUES ({v})"), &[])?;
                            Ok::<_, crate::Error>(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let syncs = db.wal_stats().sync_count() - before;
        assert!(syncs < 32, "32 transactions must share syncs, got {syncs}");
        for i in 0..4 {
            let n = db.query(&format!("SELECT COUNT(*) FROM t{i}"), &[]).unwrap().rows[0][0]
                .clone();
            assert_eq!(n, Value::Int(8));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
