//! Cross-transaction group commit: one `fsync` for many transactions.
//!
//! With [`Durability::Always`](crate::db::Durability::Always) every
//! committed transaction pays its own `sync_data`, so N concurrent
//! committers issue N disk syncs back to back — the write-rate ceiling
//! the paper's Figures 5–8 run into once durability is real. Under
//! [`Durability::Group`](crate::db::Durability::Group) committers instead
//! pass through this queue:
//!
//! 1. A committing session encodes its WAL group (`Begin, Stmt…, Commit`
//!    frames) *outside* any lock, enqueues the bytes with a ticket, and
//!    parks on the queue's condvar.
//! 2. The first committer to find no active leader **becomes the
//!    leader**: it waits up to `max_wait` for the queue to reach
//!    `max_batch` groups (new arrivals poke the condvar), then drains up
//!    to `max_batch` entries, appends them all in one buffered write, and
//!    issues a **single** `sync_data` under the WAL mutex.
//! 3. The leader publishes one result per drained ticket, steps down, and
//!    wakes everyone. Woken followers whose ticket resolved return it;
//!    a follower whose ticket is still queued (the drained batch was
//!    full) takes over as the next leader.
//!
//! Even with `max_wait = 0` batching emerges naturally: while a leader is
//! inside `sync_data`, every other committer enqueues behind it, and the
//! next leader drains them all — the classic self-clocking group commit.
//! `max_wait` only adds an explicit collection window on top.
//!
//! [`Durability::Async`](crate::db::Durability::Async) rides the same
//! queue: commits enqueue exactly like `Group` but never park — they are
//! acknowledged immediately with a commit epoch, and a detached flusher
//! thread ([`Database::ensure_flusher`]) plays the leader role batch
//! after batch, publishing the durable-epoch watermark as it goes (see
//! [`crate::epoch`] for the epoch/ack contract).
//!
//! Correctness has two parts:
//!
//! * **Log order = execution order.** Conflicting operations are ordered
//!   by the barrier layer ([`crate::lock`]), and every path that can put
//!   bytes in the log fixes its position *while still holding its
//!   barriers*: a grouped commit enqueues before
//!   [`Database::transaction`](crate::db::Database::transaction) drops
//!   its barriers, and a direct append (an autocommit statement, or an
//!   `Always` commit after a runtime policy flip) first drains every
//!   queued group into the log — under the WAL mutex, via
//!   [`Database::append_after_queue`] — before writing its own record.
//!   The leader likewise drains the queue only while holding the WAL
//!   mutex, so drain-and-append is one critical section and a direct
//!   append can never land ahead of a group enqueued before it.
//! * **Visibility runs ahead of durability — deliberately.** A
//!   transaction's barriers are released as soon as its group is
//!   enqueued, *before* any `sync_data`: that is what lets the next
//!   conflicting transaction execute and join the batch while the
//!   leader's sync is in flight (otherwise contended tables would
//!   serialise into batches of one). The flip side is the standard
//!   early-lock-release anomaly: a concurrent **reader may observe a
//!   commit whose group is not yet on disk** and act on state that a
//!   crash would roll back. The committer itself is never lied to —
//!   `commit()` returns only after its group is durable — and callers
//!   that must not expose maybe-lost data to third parties should stay
//!   on [`Durability::Always`](crate::db::Durability::Always) (see
//!   DESIGN.md §7.1).
//!
//! Recovery needs no changes: each group in a batched physical write is
//! self-delimiting, so a torn tail discards exactly the groups missing
//! their Commit frame (see `crates/mcs/tests/crash_atomicity.rs` for the
//! byte-granular proof).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::time::{Duration, Instant};

use crate::db::Database;
use crate::error::{Error, Result};

/// The shared commit queue. One per [`Database`]; cheap when unused
/// (a transaction under `Durability::Always` never touches it).
///
/// Uses `std::sync` primitives rather than the vendored `parking_lot`
/// stub because the protocol needs a condvar; poisoning is recovered the
/// same way the stub does (a panicking committer must not wedge commits).
#[derive(Debug, Default)]
pub(crate) struct GroupCommitQueue {
    state: Mutex<QueueState>,
    /// Single condvar for both roles: followers wait on it for their
    /// result, a collecting leader waits on it for the queue to fill.
    cond: Condvar,
}

impl GroupCommitQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One enqueued commit group awaiting a leader (or the async flusher).
#[derive(Debug)]
struct PendingGroup {
    ticket: u64,
    /// Commit epoch, allocated under the queue lock at enqueue time — the
    /// same instant the group's log position becomes fixed, so epoch order
    /// equals log order (see [`crate::epoch`]).
    epoch: u64,
    bytes: Vec<u8>,
    /// `true` for [`Durability::Group`](crate::db::Durability::Group)
    /// committers, who park on the queue and read their result back;
    /// `false` for [`Durability::Async`](crate::db::Durability::Async)
    /// commits, which return immediately — publishing a result nobody
    /// reads would leak a map entry per commit.
    wants_result: bool,
}

#[derive(Debug, Default)]
struct QueueState {
    /// Encoded groups awaiting a leader, FIFO in ticket (and epoch) order.
    pending: VecDeque<PendingGroup>,
    /// Results for drained tickets; each follower removes its own entry,
    /// so the map never outgrows one batch.
    results: HashMap<u64, Option<String>>,
    next_ticket: u64,
    leader_active: bool,
    /// Threads inside [`Database::flush_commit_queue`] demanding the
    /// queue be drained *now* (`sync_now`, checkpoint). A non-zero count
    /// cuts any leader's collection window short — an explicit sync
    /// barrier must never sleep out an async flush window.
    sync_waiters: usize,
    /// An async background flusher thread is alive (spawned by
    /// [`Database::ensure_flusher`]). It clears this flag — in the same
    /// critical section in which it observes the queue empty — and exits,
    /// so an idle database carries no thread.
    flusher_active: bool,
}

impl Database {
    /// Enqueue an encoded group; returns `(ticket, epoch)`. The queue is
    /// FIFO, so from this point the group's position in the log relative
    /// to every other enqueued group is fixed — which is also why the
    /// commit epoch is allocated here, under the queue lock: epoch order
    /// is log order. The caller may release its transaction barriers
    /// before redeeming the ticket (or, for `wants_result = false`, never
    /// redeem it at all and track the epoch instead).
    pub(crate) fn group_enqueue(&self, group: Vec<u8>, wants_result: bool) -> (u64, u64) {
        let q = self.commit_queue();
        let mut st = q.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        let epoch = self.commit_epochs().fetch_add(1, Ordering::AcqRel) + 1;
        if !wants_result {
            // Async ack: the commit is about to be acknowledged with this
            // epoch while its bytes are still queued.
            let stats = self.wal_stats();
            stats.acked_not_durable.fetch_add(1, Ordering::Relaxed);
            let lag = epoch - self.epoch_gate().durable().min(epoch);
            stats.max_epoch_lag.fetch_max(lag, Ordering::Relaxed);
        }
        st.pending.push_back(PendingGroup { ticket, epoch, bytes: group, wants_result });
        // A leader may be sitting in its collection window — let it see
        // the new entry (also wakes followers, who harmlessly re-check).
        q.cond.notify_all();
        (ticket, epoch)
    }

    /// Park until the ticket's group is durable: lead if no leader is
    /// active, otherwise follow (wait to be woken with a result).
    pub(crate) fn group_commit_wait(
        &self,
        ticket: u64,
        max_wait: Duration,
        max_batch: usize,
    ) -> Result<()> {
        let q = self.commit_queue();
        let mut st = q.lock();
        loop {
            if let Some(outcome) = st.results.remove(&ticket) {
                return match outcome {
                    None => Ok(()),
                    Some(msg) => Err(Error::ExecError(msg)),
                };
            }
            if !st.leader_active {
                st.leader_active = true;
                drop(st);
                self.lead_batch(max_wait, max_batch.max(1), false);
                st = q.lock();
            } else {
                st = q.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Leader role: collect, write, sync, publish. `leader_active` is
    /// already claimed by the caller; this always releases it.
    ///
    /// `yield_to_sync` is set by the async flusher: its collection window
    /// may be tuned long (async callers aren't waiting), so it must break
    /// the window the moment a `wants_result` group appears — that
    /// committer is parked and is owed *its* latency bound, not the
    /// flusher's. A synchronous `Group` leader never yields (collecting
    /// parked peers is the whole point of its window).
    fn lead_batch(&self, max_wait: Duration, max_batch: usize, yield_to_sync: bool) {
        let q = self.commit_queue();
        let deadline = Instant::now() + max_wait;
        // Collection window: wait (queue lock only, never the WAL mutex)
        // for the batch to fill; new arrivals poke the condvar. An empty
        // queue ends the window early — a direct appender has drained and
        // published everything (possibly including this leader's own
        // group), so there is nothing left to collect. A pending sync
        // barrier (`sync_waiters`) cuts the window short for any leader.
        {
            let mut st = q.lock();
            while !st.pending.is_empty() && st.pending.len() < max_batch && st.sync_waiters == 0
            {
                if yield_to_sync && st.pending.iter().any(|g| g.wants_result) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, timeout) = q
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        // Drain only *after* taking the WAL mutex: drain-and-append must
        // be one critical section, or a direct append (autocommit
        // statement / `Always` commit) could slip between them and land
        // in the log ahead of an earlier-executed queued group. A direct
        // appender that won the WAL mutex has already drained (and
        // published) some prefix of this batch; what is left is still in
        // FIFO order.
        let mut wal = self.wal_lock();
        let batch: Vec<PendingGroup> = {
            let mut st = q.lock();
            let n = st.pending.len().min(max_batch);
            st.pending.drain(..n).collect()
        };
        let result = if batch.is_empty() {
            Ok(())
        } else {
            match wal.as_mut() {
                Some(w) => w.append_batch(batch.iter().map(|g| g.bytes.as_slice())),
                // No WAL attached (never detaches once attached; this arm
                // is unreachable in practice): nothing to persist.
                None => Ok(()),
            }
        };
        if !batch.is_empty() {
            match &result {
                Ok(()) => {
                    // FIFO ⇒ the last group carries the batch's largest
                    // epoch; everything at or below it is now flushed.
                    self.epoch_gate().publish(batch.last().map_or(0, |g| g.epoch));
                    let asyncs = batch.iter().filter(|g| !g.wants_result).count() as u64;
                    if asyncs > 0 {
                        self.wal_stats().acked_not_durable.fetch_sub(asyncs, Ordering::Relaxed);
                    }
                }
                // The writer has poisoned itself: epochs above the
                // watermark can no longer become durable through this log.
                // Fail the gate so async waiters return instead of hanging
                // (checkpoint clears it).
                Err(e) => self.epoch_gate().fail(&e.to_string()),
            }
        }
        drop(wal);
        let err = result.err().map(|e| e.to_string());
        let mut st = q.lock();
        for g in &batch {
            if g.wants_result {
                st.results.insert(g.ticket, err.clone());
            }
        }
        st.leader_active = false;
        q.cond.notify_all();
    }

    /// The single ordering point for **direct** WAL appends (autocommit
    /// statements, `Durability::Always` commits): with the WAL mutex held
    /// (the `&mut WalWriter` proves it), drain every queued group into
    /// the log — in enqueue order, ahead of the caller's record — then
    /// run the caller's own append. Any group already enqueued belongs to
    /// a transaction that executed (and released its barriers) before the
    /// caller could, so its bytes must precede the caller's; skipping the
    /// drain would let recovery replay the two in the wrong order.
    ///
    /// The caller's `append` closure is expected to flush/sync, which
    /// covers the drained groups too; their waiting committers are
    /// published (woken with the combined result) after it returns.
    ///
    /// Returns the commit epoch allocated for the caller's own record. It
    /// is allocated in the *same* queue-lock critical section as the drain
    /// (with the WAL mutex held throughout), so it is strictly greater
    /// than every drained group's epoch and strictly less than any epoch
    /// enqueued afterwards — epoch order stays log order. On success the
    /// epoch is published as durable (the closure flushed it); on failure
    /// the gate is failed so async waiters return promptly.
    pub(crate) fn append_after_queue(
        &self,
        w: &mut crate::wal::WalWriter,
        append: impl FnOnce(&mut crate::wal::WalWriter) -> Result<()>,
    ) -> Result<u64> {
        let (drained, epoch): (Vec<PendingGroup>, u64) = {
            let mut st = self.commit_queue().lock();
            let drained = st.pending.drain(..).collect();
            let epoch = self.commit_epochs().fetch_add(1, Ordering::AcqRel) + 1;
            (drained, epoch)
        };
        let result = w
            .append_groups_unsynced(drained.iter().map(|g| g.bytes.as_slice()))
            .and_then(|_| append(w));
        match &result {
            Ok(()) => {
                // Covers the drained groups too: their epochs are smaller.
                self.epoch_gate().publish(epoch);
                let asyncs = drained.iter().filter(|g| !g.wants_result).count() as u64;
                if asyncs > 0 {
                    self.wal_stats().acked_not_durable.fetch_sub(asyncs, Ordering::Relaxed);
                }
            }
            Err(e) => {
                self.epoch_gate().fail(&e.to_string());
                // The caller only learns the epoch on Ok; publish its
                // visibility here (MVCC) or the watermark would stall on
                // the gap. No row stamps convert under this epoch:
                // autocommit appends run before execution, and a failed
                // transaction commit re-stamps under a fresh epoch.
                self.mvcc_publish(epoch);
            }
        }
        if !drained.is_empty() {
            let err = result.as_ref().err().map(|e| e.to_string());
            let q = self.commit_queue();
            let mut st = q.lock();
            for g in &drained {
                if g.wants_result {
                    st.results.insert(g.ticket, err.clone());
                }
            }
            // Wakes the drained groups' committers; also nudges a leader
            // sitting in its collection window to notice the empty queue.
            q.cond.notify_all();
        }
        result.map(|()| epoch)
    }

    /// Make sure a background flusher thread is running to pay the
    /// durability of [`Durability::Async`](crate::db::Durability::Async)
    /// commits. Called after every async enqueue; cheap when a flusher is
    /// already alive. The flusher claims leadership exactly like a
    /// `Group` committer-leader (so the two modes compose on one queue),
    /// drains batch after batch, and exits the moment it observes an
    /// empty queue — idle databases carry no thread and an isolated
    /// commit waits at most one `max_wait` collection window.
    pub(crate) fn ensure_flusher(self: &Arc<Self>, max_wait: Duration, max_batch: usize) {
        let q = self.commit_queue();
        {
            let mut st = q.lock();
            if st.pending.is_empty() || st.flusher_active {
                return;
            }
            st.flusher_active = true;
        }
        let weak = Arc::downgrade(self);
        let spawned = std::thread::Builder::new()
            .name("relstore-flusher".into())
            .spawn(move || flusher_loop(weak, max_wait, max_batch.max(1)));
        if spawned.is_err() {
            // Can't spawn (resource exhaustion): pay durability here and
            // now rather than strand acked commits in the queue.
            self.commit_queue().lock().flusher_active = false;
            let _ = self.flush_commit_queue();
        }
    }

    /// Drain the queue completely (checkpoint and `sync_now` call this
    /// before syncing, so queued groups are on disk first). Registers as
    /// a sync waiter, which cuts any active leader's collection window
    /// short — this must complete in write+sync time, not window time —
    /// then waits that leader out and drains whatever is left itself.
    pub(crate) fn flush_commit_queue(&self) -> Result<()> {
        let q = self.commit_queue();
        {
            let mut st = q.lock();
            st.sync_waiters += 1;
            // A leader may be sitting in its collection window: wake it so
            // it sees the raised count and drains immediately.
            q.cond.notify_all();
        }
        loop {
            {
                let mut st = q.lock();
                while st.leader_active {
                    st = q.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                if st.pending.is_empty() {
                    st.sync_waiters -= 1;
                    return Ok(());
                }
                st.leader_active = true;
            }
            self.lead_batch(Duration::ZERO, usize::MAX, false);
        }
    }
}

/// Body of the background flusher thread (see [`Database::ensure_flusher`]).
///
/// Holds only a `Weak` handle between batches so the thread never keeps a
/// dropped database alive indefinitely; while groups are pending it
/// upgrades, claims leadership (waiting out a concurrent `Group` leader if
/// one is mid-batch), and runs the ordinary [`Database::lead_batch`] path.
/// The exit check and the `flusher_active` reset happen in one queue-lock
/// critical section, so an async commit enqueued after the reset finds
/// `flusher_active == false` and spawns a replacement — no group can be
/// stranded.
fn flusher_loop(db: Weak<Database>, max_wait: Duration, max_batch: usize) {
    loop {
        let Some(db) = db.upgrade() else { return };
        let q = db.commit_queue();
        {
            let mut st = q.lock();
            loop {
                if st.pending.is_empty() {
                    // Exit idle windows immediately: no sleeping out
                    // `max_wait` against an empty queue.
                    st.flusher_active = false;
                    return;
                }
                if !st.leader_active {
                    st.leader_active = true;
                    break;
                }
                st = q.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        db.lead_batch(max_wait, max_batch, true);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use crate::db::Durability;
    use crate::lock::Access;
    use crate::value::Value;
    use crate::wal::SyncPolicy;
    use crate::Database;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "relstore-gc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn grouped() -> Durability {
        Durability::Group { max_wait: Duration::from_millis(2), max_batch: 64 }
    }

    #[test]
    fn single_committer_degenerates_to_batch_of_one() {
        let dir = tmpdir("single");
        {
            let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, grouped()).unwrap();
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, v INTEGER)", &[])
                .unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
                s.execute("INSERT INTO t (v) VALUES (2)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            assert_eq!(db.wal_stats().group_commit_count(), 1);
            assert_eq!(db.wal_stats().batch_count(), 1);
        } // crash
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_transactions_skip_the_queue() {
        let dir = tmpdir("empty");
        let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, grouped()).unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        let before = db.wal_stats().sync_count();
        db.transaction(&[("t", Access::Read)], |s| {
            s.execute("SELECT * FROM t", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        assert_eq!(db.wal_stats().sync_count(), before, "read-only commit must not sync");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_flushes_queued_groups() {
        let dir = tmpdir("ckpt");
        {
            let db = Database::open_durable_with(&dir, SyncPolicy::OsBuffered, grouped()).unwrap();
            db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (7)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            db.checkpoint().unwrap();
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (8)", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_policy_can_flip_at_runtime() {
        let dir = tmpdir("flip");
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.durability(), Durability::Always);
        db.set_durability(grouped());
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        db.set_durability(Durability::Always);
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (2)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        assert_eq!(db.wal_stats().group_commit_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A conflicting autocommit statement runs while a grouped commit's
    /// bytes are still queued (the committer-leader is parked in a long
    /// collection window): the direct append must drain the queued group
    /// into the log *ahead* of its own record, or recovery replays the
    /// delete before the insert. Also proves the drain publishes the
    /// parked committer — nobody waits out the 5 s window.
    #[test]
    fn direct_append_drains_queued_groups_first() {
        let dir = tmpdir("order");
        {
            let db = Database::open_durable_with(
                &dir,
                SyncPolicy::EveryWrite,
                Durability::Group { max_wait: Duration::from_secs(5), max_batch: 64 },
            )
            .unwrap();
            db.execute("CREATE TABLE t (name VARCHAR(32))", &[]).unwrap();
            let started = std::time::Instant::now();
            let (in_txn, ready) = std::sync::mpsc::channel();
            let writer = {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    db.transaction(&[("t", Access::Write)], |s| {
                        s.execute("INSERT INTO t (name) VALUES ('from-txn')", &[])?;
                        in_txn.send(()).unwrap();
                        Ok::<_, crate::Error>(())
                    })
                    .unwrap();
                })
            };
            // Blocks on t's barrier until the transaction has enqueued its
            // group and released (enqueue happens under the barriers), so
            // this delete executes strictly after the insert — and must
            // also land after it in the log.
            ready.recv().unwrap();
            db.execute("DELETE FROM t WHERE name = 'from-txn'", &[]).unwrap();
            writer.join().unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(4),
                "committer stalled in the collection window instead of being \
                 published by the direct append"
            );
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0],
            Value::Int(0),
            "recovery replayed the autocommit delete ahead of the grouped insert"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping `Group` → `Always` at runtime while a group is still
    /// queued: the `Always` commit is a direct append and must push the
    /// queued group into the log ahead of itself.
    #[test]
    fn always_commit_after_flip_drains_queued_groups() {
        let dir = tmpdir("flip-order");
        {
            let db = Database::open_durable_with(
                &dir,
                SyncPolicy::EveryWrite,
                Durability::Group { max_wait: Duration::from_secs(5), max_batch: 64 },
            )
            .unwrap();
            db.execute("CREATE TABLE t (name VARCHAR(32))", &[]).unwrap();
            let (in_txn, ready) = std::sync::mpsc::channel();
            let writer = {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    db.transaction(&[("t", Access::Write)], |s| {
                        s.execute("INSERT INTO t (name) VALUES ('x')", &[])?;
                        in_txn.send(()).unwrap();
                        Ok::<_, crate::Error>(())
                    })
                    .unwrap();
                })
            };
            ready.recv().unwrap();
            db.set_durability(Durability::Always);
            // barrier-ordered after the insert; under Always it appends
            // directly, which must drain the queued insert group first
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("DELETE FROM t WHERE name = 'x'", &[])?;
                Ok::<_, crate::Error>(())
            })
            .unwrap();
            writer.join().unwrap();
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `Durability::Async` acks immediately with an epoch; `sync_now` is
    /// the final barrier after which everything is durable and the debt
    /// gauge is paid off. Recovery sees every acked-and-synced commit.
    #[test]
    fn async_commits_ack_immediately_and_become_durable() {
        let dir = tmpdir("async");
        {
            let db = Database::open_durable_with(
                &dir,
                SyncPolicy::EveryWrite,
                Durability::Async { max_wait: Duration::from_millis(2), max_batch: 64 },
            )
            .unwrap();
            db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
            let mut last = 0u64;
            for v in 0..16 {
                db.transaction(&[("t", Access::Write)], |s| {
                    s.execute(&format!("INSERT INTO t (v) VALUES ({v})"), &[])?;
                    Ok::<_, crate::Error>(())
                })
                .unwrap();
                let e = Database::last_commit_epoch();
                assert!(e > last, "epochs must be strictly increasing: {e} after {last}");
                last = e;
            }
            db.sync_now().unwrap();
            assert_eq!(db.durable_epoch(), db.commit_epoch());
            assert_eq!(db.wal_stats().acked_not_durable_count(), 0);
            assert!(db.wal_stats().sync_count() < 16, "async commits must share syncs");
        } // crash
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0], Value::Int(16));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression for the idle-window fix: an isolated async commit must
    /// become durable within ~one `max_wait` collection window *with
    /// nobody prompting* — the watermark is polled passively, never
    /// waited on (`wait_for_epoch` would actively drain the queue and
    /// mask a flusher that sleeps out extra windows). If the flusher
    /// re-entered a window against an empty queue (or slept out a second
    /// window before exiting) this would take two.
    #[test]
    fn isolated_async_commit_durable_within_one_window() {
        let dir = tmpdir("async-lone");
        let max_wait = Duration::from_millis(300);
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Async { max_wait, max_batch: 64 },
        )
        .unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        let started = std::time::Instant::now();
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        let epoch = Database::last_commit_epoch();
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "async commit must ack without waiting for the flusher"
        );
        let deadline = started + max_wait + Duration::from_millis(250);
        while db.durable_epoch() < epoch {
            assert!(
                std::time::Instant::now() < deadline,
                "isolated commit not durable after {:?}; flusher slept past one \
                 {max_wait:?} window",
                started.elapsed()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Per-commit `with_durability` overrides: Always, Group and Async
    /// writers interleave on one table/queue and all survive reopen in
    /// order.
    #[test]
    fn mixed_durability_commits_share_the_queue() {
        let dir = tmpdir("mixed");
        {
            let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, grouped()).unwrap();
            db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
            let modes = [
                Durability::Async { max_wait: Duration::from_millis(2), max_batch: 64 },
                Durability::Always,
                grouped(),
                Durability::Async { max_wait: Duration::from_millis(2), max_batch: 64 },
                Durability::Always,
            ];
            for (v, mode) in modes.iter().enumerate() {
                db.with_durability(*mode, || {
                    db.transaction(&[("t", Access::Write)], |s| {
                        s.execute(&format!("INSERT INTO t (v) VALUES ({v})"), &[])?;
                        Ok::<_, crate::Error>(())
                    })
                })
                .unwrap();
            }
            // the override is scoped: outside the closure the db-wide
            // policy is back in force
            assert_eq!(db.effective_durability(), grouped());
            db.sync_now().unwrap();
            assert_eq!(db.wal_stats().acked_not_durable_count(), 0);
        }
        let db = Database::open_durable(&dir, SyncPolicy::EveryWrite).unwrap();
        let rs = db.query("SELECT v FROM t ORDER BY v", &[]).unwrap();
        assert_eq!(rs.rows.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A `Group` committer that enqueues while the async flusher is
    /// sitting in a *long* collection window must not wait that window
    /// out: the flusher yields (breaks its window) the moment a parked
    /// synchronous committer appears in the queue.
    #[test]
    fn group_commit_is_not_held_hostage_by_flusher_window() {
        let dir = tmpdir("hostage");
        let huge = Duration::from_secs(600);
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Async { max_wait: huge, max_batch: 1024 },
        )
        .unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        // park the flusher in its (huge) window with one async group
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        let async_epoch = Database::last_commit_epoch();
        let started = std::time::Instant::now();
        db.with_durability(Durability::Group { max_wait: Duration::from_millis(50), max_batch: 8 }, || {
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute("INSERT INTO t (v) VALUES (2)", &[])?;
                Ok::<_, crate::Error>(())
            })
        })
        .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "Group commit waited out the flusher's {huge:?} window"
        );
        // the yield drained FIFO: the async group rode along and is durable
        assert!(db.durable_epoch() >= async_epoch);
        assert_eq!(db.wal_stats().acked_not_durable_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `sync_now` (and checkpoint) must cut an active leader's collection
    /// window short rather than sleep it out: an explicit sync barrier
    /// completes in write+sync time.
    #[test]
    fn sync_now_cuts_the_collection_window() {
        let dir = tmpdir("cut");
        let huge = Duration::from_secs(600);
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Async { max_wait: huge, max_batch: 1024 },
        )
        .unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        db.transaction(&[("t", Access::Write)], |s| {
            s.execute("INSERT INTO t (v) VALUES (1)", &[])?;
            Ok::<_, crate::Error>(())
        })
        .unwrap();
        let started = std::time::Instant::now();
        db.sync_now().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "sync_now waited out the flusher's {huge:?} window"
        );
        assert_eq!(db.durable_epoch(), db.commit_epoch());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Many concurrent committers on disjoint tables share batches: the
    /// sync count stays well under the transaction count.
    #[test]
    fn concurrent_commits_share_syncs() {
        let dir = tmpdir("share");
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Group { max_wait: Duration::from_millis(10), max_batch: 4 },
        )
        .unwrap();
        for i in 0..4 {
            db.execute(&format!("CREATE TABLE t{i} (v INTEGER)"), &[]).unwrap();
        }
        let before = db.wal_stats().sync_count();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let t = format!("t{i}");
                    for v in 0..8 {
                        db.transaction(&[(t.as_str(), Access::Write)], |s| {
                            s.execute(&format!("INSERT INTO t{i} (v) VALUES ({v})"), &[])?;
                            Ok::<_, crate::Error>(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let syncs = db.wal_stats().sync_count() - before;
        assert!(syncs < 32, "32 transactions must share syncs, got {syncs}");
        for i in 0..4 {
            let n = db.query(&format!("SELECT COUNT(*) FROM t{i}"), &[]).unwrap().rows[0][0]
                .clone();
            assert_eq!(n, Value::Int(8));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
