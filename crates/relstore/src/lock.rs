//! Transaction-scope table barriers.
//!
//! The table `RwLock`s in [`crate::db`] are statement-scoped: the executor
//! takes them per statement, so a multi-statement transaction's in-flight
//! writes would be visible between its statements. Barriers add the missing
//! transaction-scope layer *above* those locks. How much of it a database
//! uses depends on its engine:
//!
//! **Barrier engine** (the default) — barriers are the only isolation
//! mechanism, on reads and writes alike:
//!
//! * A transaction acquires the barriers of every table it declared, in one
//!   global order (sorted lowercase name) — exclusive for tables it writes,
//!   shared for tables it only reads. It holds them until commit/rollback,
//!   so no other statement can observe its intermediate state and its reads
//!   are stable.
//! * Every statement executed *outside* a transaction acquires the shared
//!   barrier of each table it references (again in sorted order) for the
//!   statement's duration, which is what makes in-flight transactions
//!   invisible to it.
//!
//! **MVCC engine** ([`crate::Database::new_mvcc`]; see [`crate::mvcc`] and
//! DESIGN.md §7.5) — readers are isolated by snapshot, not by barrier, so
//! only the writer-vs-writer half of the above remains:
//!
//! * SELECT statements and pure-read transactions acquire **no** barrier at
//!   all; they pin a snapshot epoch and visibility-filter version chains.
//! * A transaction with any `Write` claim upgrades every claim to
//!   exclusive, and write statements outside transactions keep the shared
//!   statement acquisition — barriers still serialize writers against each
//!   other (and against checkpoint quiesce), which keeps commit stamping
//!   single-writer per table.
//!
//! Shared acquisition common to both engines:
//!
//! * Acquisition is re-entrant per thread: a statement running inside a
//!   transaction's closure skips barriers its transaction already holds.
//!   That lets catalog code issue reads through the plain [`crate::Database`]
//!   handle mid-transaction without self-deadlock.
//!
//! Deadlock freedom: every acquisition sequence (transaction begin,
//!   per-statement shared set, checkpoint quiesce) follows the same global
//!   sort order, and blocked acquirers only ever wait on tables strictly
//!   greater than every table they hold, so the wait-for graph cannot
//!   cycle. Writers get priority over new shared acquirers so a stream of
//!   readers cannot starve a transaction.
//!
//! Lock hierarchy (acquire strictly downward): barrier → WAL mutex → table
//! `RwLock`.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, ThreadId};

use crate::error::{Error, Result};

/// Access mode a transaction declares for one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The transaction only reads the table; concurrent readers and other
    /// `Read`-mode transactions are allowed.
    Read,
    /// The transaction writes the table; all other access is excluded for
    /// the transaction's duration.
    Write,
}

#[derive(Debug, Default)]
struct BarrierState {
    /// Statement-scoped shared holders (not tracked per thread).
    readers: usize,
    /// The thread holding this barrier exclusively, if any.
    writer: Option<ThreadId>,
    /// Writers blocked in `acquire_exclusive` (gives writers priority).
    writers_waiting: usize,
    /// Shared acquirers blocked behind a writer. Together with
    /// `writers_waiting` this lets releases skip the condvar notify when
    /// nobody is waiting — the overwhelmingly common uncontended case.
    shared_waiting: usize,
    /// Threads holding this barrier in transaction-shared mode. Small
    /// (bounded by concurrent transactions), so a Vec beats a set.
    txn_readers: Vec<ThreadId>,
}

impl BarrierState {
    fn has_waiters(&self) -> bool {
        self.writers_waiting > 0 || self.shared_waiting > 0
    }
}

/// One table's transaction barrier.
#[derive(Debug, Default)]
pub(crate) struct TableBarrier {
    state: Mutex<BarrierState>,
    changed: Condvar,
}

impl TableBarrier {
    fn lock(&self) -> std::sync::MutexGuard<'_, BarrierState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// True if the calling thread already holds this barrier (either
    /// exclusively or in transaction-shared mode).
    fn held_by_current_thread(state: &BarrierState) -> bool {
        let me = thread::current().id();
        state.writer == Some(me) || state.txn_readers.contains(&me)
    }

    /// Statement-scoped shared acquire. Returns `true` if actually
    /// acquired, `false` if the thread's transaction already holds the
    /// barrier (re-entrant no-op; pass the result to [`release_shared`]).
    fn acquire_shared(&self) -> bool {
        let mut state = self.lock();
        if Self::held_by_current_thread(&state) {
            return false;
        }
        // Writer priority: don't overtake a waiting transaction.
        while state.writer.is_some() || state.writers_waiting > 0 {
            state.shared_waiting += 1;
            state = self.changed.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shared_waiting -= 1;
            // Re-check re-entrancy: the wait may have raced a transaction
            // this same thread... cannot happen (a thread can't start a
            // transaction while blocked here), but the check is cheap.
            if Self::held_by_current_thread(&state) {
                return false;
            }
        }
        state.readers += 1;
        true
    }

    fn release_shared(&self, acquired: bool) {
        if !acquired {
            return;
        }
        let mut state = self.lock();
        debug_assert!(state.readers > 0);
        state.readers -= 1;
        if state.readers == 0 && state.has_waiters() {
            drop(state);
            self.changed.notify_all();
        }
    }

    /// Transaction-scoped shared acquire (registers the owning thread for
    /// re-entrancy).
    fn acquire_txn_shared(&self) -> Result<()> {
        let me = thread::current().id();
        let mut state = self.lock();
        if state.writer == Some(me) || state.txn_readers.contains(&me) {
            return Err(Error::TxnState(
                "nested transaction: table already claimed by this thread".into(),
            ));
        }
        while state.writer.is_some() || state.writers_waiting > 0 {
            state.shared_waiting += 1;
            state = self.changed.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shared_waiting -= 1;
        }
        state.txn_readers.push(me);
        Ok(())
    }

    fn release_txn_shared(&self) {
        let me = thread::current().id();
        let mut state = self.lock();
        if let Some(i) = state.txn_readers.iter().position(|t| *t == me) {
            state.txn_readers.swap_remove(i);
        }
        if state.has_waiters() {
            drop(state);
            self.changed.notify_all();
        }
    }

    /// Transaction-scoped exclusive acquire.
    fn acquire_exclusive(&self) -> Result<()> {
        let me = thread::current().id();
        let mut state = self.lock();
        if state.writer == Some(me) || state.txn_readers.contains(&me) {
            return Err(Error::TxnState(
                "nested transaction: table already claimed by this thread".into(),
            ));
        }
        state.writers_waiting += 1;
        while state.writer.is_some() || state.readers > 0 || !state.txn_readers.is_empty() {
            state = self.changed.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.writers_waiting -= 1;
        state.writer = Some(me);
        Ok(())
    }

    fn release_exclusive(&self) {
        let mut state = self.lock();
        debug_assert_eq!(state.writer, Some(thread::current().id()));
        state.writer = None;
        if state.has_waiters() {
            drop(state);
            self.changed.notify_all();
        }
    }
}

/// The per-database barrier registry: one barrier per table name, created
/// on first use and kept for the database's lifetime (tables are never
/// dropped on hot paths). Read-locked on the hit path so concurrent
/// statements don't serialize on the lookup.
#[derive(Debug, Default)]
pub(crate) struct BarrierMap {
    barriers: parking_lot::RwLock<BTreeMap<String, Arc<TableBarrier>>>,
}

impl BarrierMap {
    /// `table` must already be lowercased (every caller derives it from
    /// `Database::stmt_tables` or transaction-claim normalization).
    fn get(&self, table: &str) -> Arc<TableBarrier> {
        debug_assert!(!table.bytes().any(|b| b.is_ascii_uppercase()), "barrier key not lowercase");
        if let Some(b) = self.barriers.read().get(table) {
            return Arc::clone(b);
        }
        Arc::clone(self.barriers.write().entry(table.to_owned()).or_default())
    }

    /// Shared-acquire the barriers for `tables` (pre-sorted, deduped) for
    /// one statement. The returned guard releases on drop.
    pub(crate) fn statement_guard(&self, tables: &[String]) -> StatementGuard {
        let mut held = Vec::with_capacity(tables.len());
        for t in tables {
            let b = self.get(t);
            let acquired = b.acquire_shared();
            held.push((b, acquired));
        }
        StatementGuard { held }
    }

    /// Acquire transaction barriers for `claims` (pre-sorted by name,
    /// deduped). On any error, everything already acquired is released.
    pub(crate) fn transaction_guard(&self, claims: &[(String, Access)]) -> Result<TransactionGuard> {
        let mut guard = TransactionGuard { held: Vec::with_capacity(claims.len()) };
        for (name, access) in claims {
            let b = self.get(name);
            match access {
                Access::Write => b.acquire_exclusive()?,
                Access::Read => b.acquire_txn_shared()?,
            }
            // pushed only after success: Drop releases exactly what is held
            guard.held.push((b, *access));
        }
        Ok(guard)
    }

    /// Exclusive-acquire every table's barrier (checkpoint quiesce):
    /// waits out all in-flight statements and transactions.
    pub(crate) fn quiesce_guard(&self, tables: &[String]) -> Result<TransactionGuard> {
        let claims: Vec<(String, Access)> =
            tables.iter().map(|t| (t.to_ascii_lowercase(), Access::Write)).collect();
        self.transaction_guard(&claims)
    }
}

/// Statement-scoped shared holds; released on drop.
pub(crate) struct StatementGuard {
    held: Vec<(Arc<TableBarrier>, bool)>,
}

impl Drop for StatementGuard {
    fn drop(&mut self) {
        // reverse of acquisition order
        for (b, acquired) in self.held.drain(..).rev() {
            b.release_shared(acquired);
        }
    }
}

/// Transaction-scoped holds; released on drop (commit, rollback, or panic).
pub(crate) struct TransactionGuard {
    held: Vec<(Arc<TableBarrier>, Access)>,
}

impl Drop for TransactionGuard {
    fn drop(&mut self) {
        for (b, access) in self.held.drain(..).rev() {
            match access {
                Access::Write => b.release_exclusive(),
                Access::Read => b.release_txn_shared(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn shared_is_concurrent() {
        let b = TableBarrier::default();
        assert!(b.acquire_shared());
        assert!(b.acquire_shared());
        b.release_shared(true);
        b.release_shared(true);
    }

    #[test]
    fn exclusive_excludes_shared() {
        let map = Arc::new(BarrierMap::default());
        let claims = vec![("t".to_string(), Access::Write)];
        let guard = map.transaction_guard(&claims).unwrap();
        let map2 = Arc::clone(&map);
        let entered = Arc::new(AtomicUsize::new(0));
        let entered2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            let _g = map2.statement_guard(&["t".to_string()]);
            entered2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "reader must wait for the txn");
        drop(guard);
        h.join().unwrap();
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reentrant_for_owner_thread() {
        let map = BarrierMap::default();
        let claims =
            vec![("a".to_string(), Access::Write), ("b".to_string(), Access::Read)];
        let _txn = map.transaction_guard(&claims).unwrap();
        // same thread's statement on the claimed tables must not block
        let _stmt = map.statement_guard(&["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn nested_claim_is_rejected() {
        let map = BarrierMap::default();
        let claims = vec![("t".to_string(), Access::Write)];
        let _txn = map.transaction_guard(&claims).unwrap();
        assert!(map.transaction_guard(&claims).is_err());
        let read_claims = vec![("t".to_string(), Access::Read)];
        assert!(map.transaction_guard(&read_claims).is_err());
    }

    #[test]
    fn txn_shared_admits_other_txn_readers() {
        let map = Arc::new(BarrierMap::default());
        let claims = vec![("t".to_string(), Access::Read)];
        let _g1 = map.transaction_guard(&claims).unwrap();
        let map2 = Arc::clone(&map);
        std::thread::spawn(move || {
            let claims = vec![("t".to_string(), Access::Read)];
            let _g2 = map2.transaction_guard(&claims).unwrap();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn sorted_multi_table_txns_do_not_deadlock() {
        let map = Arc::new(BarrierMap::default());
        let names: Vec<String> = (0..4).map(|i| format!("t{i}")).collect();
        let mut handles = Vec::new();
        for offset in 0..8 {
            let map = Arc::clone(&map);
            let names = names.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    // every subset, always claimed in sorted order
                    let mut claims: Vec<(String, Access)> = names
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| (round + offset + i) % 2 == 0)
                        .map(|(i, n)| {
                            (
                                n.clone(),
                                if (offset + i) % 3 == 0 { Access::Read } else { Access::Write },
                            )
                        })
                        .collect();
                    claims.sort_by(|a, b| a.0.cmp(&b.0));
                    let _g = map.transaction_guard(&claims).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
