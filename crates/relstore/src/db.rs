//! The database object: a named collection of tables, SQL entry points,
//! prepared statements, and sessions with transaction support.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::error::{Error, Result};
use crate::executor::{exec_statement, ExecResult, ResultSet};
use crate::lock::{Access, BarrierMap};
use crate::mvcc::{MvccState, SnapshotPin};
use crate::row::{Row, RowId};
use crate::sql::ast::Statement;
use crate::sql::parser::parse;
use crate::table::Table;
use crate::txn::UndoLog;
use crate::value::Value;

/// Counters of executed statements, for the evaluation harness (the paper
/// reports operation rates; these let the harness cross-check the driver).
#[derive(Debug, Default)]
pub struct Stats {
    /// SELECT statements executed.
    pub selects: AtomicU64,
    /// INSERT statements executed.
    pub inserts: AtomicU64,
    /// UPDATE statements executed.
    pub updates: AtomicU64,
    /// DELETE statements executed.
    pub deletes: AtomicU64,
}

impl Stats {
    fn bump(&self, stmt: &Statement) {
        match stmt {
            Statement::Select(_) => &self.selects,
            Statement::Insert { .. } => &self.inserts,
            Statement::Update { .. } => &self.updates,
            Statement::Delete { .. } => &self.deletes,
            _ => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// When a committed transaction's WAL group must reach stable storage.
///
/// Orthogonal to [`crate::wal::SyncPolicy`] (which governs autocommit
/// statements): `Durability` decides how *transaction commits* pay for
/// their sync. Both policies give the same guarantee — a transaction
/// whose commit returned survives a crash — they differ only in who
/// performs the `sync_data` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Every commit issues its own `sync_data` before returning.
    Always,
    /// Commits pass through the group-commit queue
    /// ([`crate::group_commit`]): a leader batches up to `max_batch`
    /// concurrent commits, waiting at most `max_wait` for the batch to
    /// fill, and syncs once for all of them. `max_wait` bounds added
    /// commit latency; `max_batch` bounds the torn tail a crash can
    /// discard (each group is still atomic on its own).
    Group {
        /// How long a leader waits for more commits to join its batch.
        max_wait: Duration,
        /// Most groups written (and synced) as one physical write.
        max_batch: usize,
    },
    /// Commits enqueue their WAL group exactly as under
    /// [`Durability::Group`] but return **immediately** with a commit
    /// epoch instead of parking; a background flusher (reusing the
    /// group-commit leader path) appends and syncs batches and publishes
    /// the durable-epoch watermark. The committer learns its epoch via
    /// [`Database::last_commit_epoch`] and can turn the weak ack into a
    /// durable one with [`Database::wait_for_epoch`] or
    /// [`Database::sync_now`] — the paper's bulk-load clients batch
    /// thousands of adds and only need one final barrier. What "acked"
    /// does and does not promise is specified in DESIGN.md §7.2.
    Async {
        /// How long the flusher waits for more commits to join a batch
        /// (this bounds the durability lag of an isolated commit).
        max_wait: Duration,
        /// Most groups written (and synced) as one physical write.
        max_batch: usize,
    },
}

impl Default for Durability {
    fn default() -> Self {
        Durability::Always
    }
}

/// An in-memory relational database.
///
/// Tables are individually reader-writer locked (MyISAM-style table-level
/// locking, matching the MySQL 4.1 backend of the original MCS): many
/// concurrent readers, one writer per table.
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, Arc<RwLock<Table>>>>,
    /// Execution counters.
    pub stats: Stats,
    /// Write-ahead log, when the database was opened durably. While
    /// attached, write statements serialize through this mutex so the log
    /// order matches the execution order (replay correctness).
    wal: Mutex<Option<crate::wal::WalWriter>>,
    durable_dir: RwLock<Option<PathBuf>>,
    /// Transaction-scope barriers layered above the per-table `RwLock`s;
    /// see [`crate::lock`].
    barriers: BarrierMap,
    /// Transaction id allocator (journalled in Begin/Commit WAL frames).
    next_txn_id: AtomicU64,
    /// Cached "is a WAL attached" flag so hot paths skip the WAL mutex.
    durable: AtomicBool,
    /// Commit durability policy; see [`Durability`].
    durability: RwLock<Durability>,
    /// Sync/batch counters shared with the WAL writer (survives the
    /// writer being recreated at checkpoint).
    wal_stats: Arc<crate::wal::WalStats>,
    /// Leader/follower queue backing [`Durability::Group`] and
    /// [`Durability::Async`].
    group_queue: crate::group_commit::GroupCommitQueue,
    /// Commit-epoch allocator; see [`crate::epoch`]. Incremented at the
    /// moment a logged unit's position in the WAL becomes fixed, so epoch
    /// order equals log order.
    commit_epochs: AtomicU64,
    /// Durable-epoch watermark + waiters; see [`crate::epoch`].
    epoch_gate: crate::epoch::EpochGate,
    /// Per-table write versions (keyed by lowercased name): a monotonic
    /// counter bumped after every applied write while the writer's barrier
    /// is still held, so a reader can take a consistency token for a table
    /// set without touching row data. Counters survive DROP TABLE — a
    /// recreated table keeps counting up, which keeps stale cache entries
    /// stale. See DESIGN.md §7.3 for the cache-consistency contract.
    versions: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    /// MVCC snapshot reads enabled ([`Database::new_mvcc`]). Off by
    /// default: the barrier engine is unchanged so the two can be twinned.
    /// See [`crate::mvcc`] and DESIGN.md §7.5.
    mvcc: bool,
    /// Visibility watermark + snapshot-pin registry (MVCC engine only).
    mvcc_state: Arc<MvccState>,
    /// Set once the background vacuum thread has been spawned.
    vacuum_running: AtomicBool,
}

thread_local! {
    /// Per-operation durability override; see [`Database::with_durability`].
    static DURABILITY_OVERRIDE: std::cell::Cell<Option<Durability>> =
        const { std::cell::Cell::new(None) };
    /// Epoch of the most recent WAL unit this thread produced (commit or
    /// autocommit append); see [`Database::last_commit_epoch`].
    static LAST_COMMIT_EPOCH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// The snapshot epoch this thread's MVCC reads filter against, when
    /// inside a snapshot scope ([`Database::with_snapshot`]).
    static CURRENT_SNAPSHOT: std::cell::Cell<Option<u64>> =
        const { std::cell::Cell::new(None) };
}

pub(crate) fn note_commit_epoch(epoch: u64) {
    LAST_COMMIT_EPOCH.set(epoch);
}

/// The snapshot epoch pinned on this thread, if any (MVCC read scope).
pub fn current_snapshot() -> Option<u64> {
    CURRENT_SNAPSHOT.get()
}

/// Fetch a row honoring this thread's pinned snapshot when the table keeps
/// version chains; identical to [`Table::get`] otherwise. The raw-read
/// escape hatch for layers (the MCS query paths) that scan table handles
/// directly instead of going through SQL.
pub fn snapshot_row(t: &Table, id: RowId) -> Option<&Row> {
    match CURRENT_SNAPSHOT.get() {
        Some(s) if t.is_mvcc() => t.get_visible(id, s),
        _ => t.get(id),
    }
}

/// RAII scope that set this thread's snapshot epoch; restores the previous
/// value (and drops the pin, if this scope created one) on exit.
pub struct SnapshotGuard {
    prev: Option<u64>,
    _pin: Option<SnapshotPin>,
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        CURRENT_SNAPSHOT.set(self.prev);
    }
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create an empty database with MVCC snapshot reads: readers pin a
    /// snapshot epoch and traverse version chains instead of taking table
    /// barriers; exclusive barriers remain writer-vs-writer only. See
    /// [`crate::mvcc`] and DESIGN.md §7.5.
    pub fn new_mvcc() -> Database {
        Database { mvcc: true, ..Database::default() }
    }

    /// True if this database serves reads from MVCC snapshots.
    pub fn is_mvcc(&self) -> bool {
        self.mvcc
    }

    /// The current visibility watermark (0 on barrier-engine databases):
    /// the epoch a snapshot pinned right now would read at.
    pub fn visible_epoch(&self) -> u64 {
        self.mvcc_state.visible()
    }

    /// Pin a snapshot at the current watermark, holding the vacuum horizon
    /// until the pin drops. `None` on barrier-engine databases. Used by
    /// coordinators (sharded scatter-gather) that hand the epoch to worker
    /// threads via [`Database::with_snapshot_at`].
    pub fn pin_snapshot(&self) -> Option<SnapshotPin> {
        self.mvcc.then(|| SnapshotPin::new(Arc::clone(&self.mvcc_state)))
    }

    /// Open a snapshot scope on this thread: pins the current watermark
    /// and makes MVCC reads filter against it until the guard drops. If a
    /// scope is already open (an enclosing pure-read transaction), the
    /// existing snapshot is reused — nested reads stay repeatable. `None`
    /// (no-op) on barrier-engine databases.
    pub(crate) fn snapshot_scope(&self) -> Option<SnapshotGuard> {
        if !self.mvcc {
            return None;
        }
        let prev = CURRENT_SNAPSHOT.get();
        if prev.is_some() {
            return None; // reuse the enclosing scope's snapshot
        }
        let pin = SnapshotPin::new(Arc::clone(&self.mvcc_state));
        CURRENT_SNAPSHOT.set(Some(pin.epoch()));
        Some(SnapshotGuard { prev, _pin: Some(pin) })
    }

    /// Run `f` inside a snapshot scope (see [`Database::snapshot_scope`]).
    pub fn with_snapshot<R>(&self, f: impl FnOnce() -> R) -> R {
        let _scope = self.snapshot_scope();
        f()
    }

    /// Run `f` reading at an explicit snapshot epoch. The caller must keep
    /// a [`SnapshotPin`] at or below `epoch` alive for the duration — this
    /// only sets the thread-local, it does not pin (the shard scatter path:
    /// the coordinator pins, workers read).
    pub fn with_snapshot_at<R>(&self, epoch: u64, f: impl FnOnce() -> R) -> R {
        if !self.mvcc {
            return f();
        }
        let prev = CURRENT_SNAPSHOT.replace(Some(epoch));
        let _scope = SnapshotGuard { prev, _pin: None };
        f()
    }

    /// Stamp this thread's pending row versions in `tables` with `epoch`,
    /// then publish it to the visibility watermark. The stamp-then-publish
    /// order is what makes a snapshot a consistent cut: once a reader pins
    /// `S`, every row stamp of every epoch `<= S` is already in place.
    pub(crate) fn mvcc_commit(&self, tables: &[String], epoch: u64) {
        for name in tables {
            if let Ok(t) = self.table(name) {
                t.write().stamp_pending(epoch);
            }
        }
        self.mvcc_state.publish(epoch);
    }

    /// Publish an epoch whose commit failed (MVCC only; no-op otherwise).
    /// Every allocated epoch must reach the watermark or it stalls.
    pub(crate) fn mvcc_publish(&self, epoch: u64) {
        if self.mvcc {
            self.mvcc_state.publish(epoch);
        }
    }

    /// Allocate a commit epoch for a write that does not go through the
    /// WAL epoch allocator (non-durable MVCC commits).
    pub(crate) fn alloc_local_epoch(&self) -> u64 {
        self.commit_epochs.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Reclaim row versions older than the oldest pinned snapshot (and the
    /// index entries only they needed). Returns the number of versions
    /// dropped. No-op on barrier-engine databases.
    pub fn vacuum(&self) -> u64 {
        if !self.mvcc {
            return 0;
        }
        let horizon = self.mvcc_state.horizon();
        let handles: Vec<Arc<RwLock<Table>>> = self.tables.read().values().cloned().collect();
        let mut reclaimed = 0u64;
        for h in handles {
            reclaimed += h.write().vacuum(horizon);
        }
        self.wal_stats.vacuum_runs.fetch_add(1, Ordering::Relaxed);
        self.wal_stats.versions_vacuumed.fetch_add(reclaimed, Ordering::Relaxed);
        reclaimed
    }

    /// Spawn the background vacuum thread (idempotent; exits when the
    /// database is dropped). No-op on barrier-engine databases.
    pub fn start_vacuum(self: &Arc<Self>, interval: Duration) {
        if !self.mvcc || self.vacuum_running.swap(true, Ordering::AcqRel) {
            return;
        }
        let weak = Arc::downgrade(self);
        std::thread::Builder::new()
            .name("relstore-vacuum".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(db) = weak.upgrade() else { return };
                db.vacuum();
            })
            .expect("spawn vacuum thread");
    }

    /// Register a programmatically-built table.
    pub fn add_table(&self, table: Table) -> Result<()> {
        let mut table = table;
        if self.mvcc {
            table.set_mvcc(self.wal_stats_arc());
        }
        let key = table.schema.name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(Error::TableExists(table.schema.name.clone()));
        }
        tables.insert(key.clone(), Arc::new(RwLock::new(table)));
        drop(tables);
        self.version_counter(&key).fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Handle to a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(name.to_owned()))
    }

    /// Remove a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        self.tables
            .write()
            .remove(&key)
            .map(drop)
            .ok_or_else(|| Error::NoSuchTable(name.to_owned()))?;
        self.version_counter(&key).fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().values().map(|t| t.read().schema.name.clone()).collect()
    }

    pub(crate) fn attach_wal(&self, writer: crate::wal::WalWriter, dir: PathBuf) {
        *self.wal.lock() = Some(writer);
        *self.durable_dir.write() = Some(dir);
        self.durable.store(true, Ordering::Release);
    }

    pub(crate) fn durable_dir(&self) -> Option<PathBuf> {
        self.durable_dir.read().clone()
    }

    /// True once a write-ahead log is attached.
    pub fn is_durable(&self) -> bool {
        self.durable.load(Ordering::Acquire)
    }

    /// The commit durability policy in effect.
    pub fn durability(&self) -> Durability {
        *self.durability.read()
    }

    /// Change the commit durability policy. Takes effect for the next
    /// commit; in-flight group commits complete under the old policy.
    pub fn set_durability(&self, d: Durability) {
        *self.durability.write() = d;
    }

    /// Run `f` with `d` as this thread's commit durability, overriding the
    /// database-wide policy for every commit `f` makes (the per-operation
    /// knob the MCS layer exposes as a SOAP header). Restores the previous
    /// override on exit, including across panics; nested overrides stack.
    pub fn with_durability<R>(&self, d: Durability, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Durability>);
        impl Drop for Restore {
            fn drop(&mut self) {
                DURABILITY_OVERRIDE.set(self.0);
            }
        }
        let _restore = Restore(DURABILITY_OVERRIDE.replace(Some(d)));
        f()
    }

    /// The durability policy the *next* commit on this thread will use:
    /// the [`Database::with_durability`] override when one is active,
    /// otherwise the database-wide policy.
    pub fn effective_durability(&self) -> Durability {
        DURABILITY_OVERRIDE.get().unwrap_or_else(|| self.durability())
    }

    /// The commit epoch allocated by the most recent durable commit (or
    /// autocommit write) made by **this thread**, 0 if it has made none.
    /// Thread-local so layered APIs (the MCS write paths) can return
    /// `(result, epoch)` without threading the epoch through every
    /// signature.
    pub fn last_commit_epoch() -> u64 {
        LAST_COMMIT_EPOCH.get()
    }

    /// Replace this thread's last-commit-epoch marker, returning the old
    /// value. Epoch counters are per database, so a router over several
    /// databases (the sharded MCS catalog) cannot tell "no commit" from
    /// "a commit whose epoch happens to equal another shard's last one"
    /// by comparing [`Database::last_commit_epoch`] before and after; it
    /// zeroes the marker first and restores it when nothing committed.
    pub fn swap_last_commit_epoch(epoch: u64) -> u64 {
        LAST_COMMIT_EPOCH.replace(epoch)
    }

    pub(crate) fn commit_epochs(&self) -> &AtomicU64 {
        &self.commit_epochs
    }

    pub(crate) fn epoch_gate(&self) -> &crate::epoch::EpochGate {
        &self.epoch_gate
    }

    /// WAL sync/batch counters (test and benchmark hook).
    pub fn wal_stats(&self) -> &crate::wal::WalStats {
        &self.wal_stats
    }

    pub(crate) fn wal_stats_arc(&self) -> Arc<crate::wal::WalStats> {
        Arc::clone(&self.wal_stats)
    }

    pub(crate) fn commit_queue(&self) -> &crate::group_commit::GroupCommitQueue {
        &self.group_queue
    }

    pub(crate) fn barriers(&self) -> &BarrierMap {
        &self.barriers
    }

    /// The write-version counter for `key` (already lowercased),
    /// get-or-create.
    fn version_counter(&self, key: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.versions.read().get(key) {
            return Arc::clone(c);
        }
        let mut map = self.versions.write();
        Arc::clone(map.entry(key.to_owned()).or_default())
    }

    /// The current write version of a table (case-insensitive). Starts at
    /// 0 and increases monotonically with every applied write (including
    /// rollbacks, which also mutate the table); never decreases. Tables
    /// that were never written — including ones that don't exist — report
    /// version 0.
    pub fn table_version(&self, name: &str) -> u64 {
        self.version_counter(&name.to_ascii_lowercase()).load(Ordering::Acquire)
    }

    /// Snapshot the write versions of several tables at once (the
    /// consistency token a cache stamps its entries with). Names are
    /// case-insensitive; the result is in argument order. The snapshot is
    /// not atomic across tables — that is fine for validation by equality,
    /// because any write between the two component loads bumps its
    /// counter and makes the vectors unequal.
    pub fn version_vector(&self, names: &[&str]) -> Vec<u64> {
        names.iter().map(|n| self.table_version(n)).collect()
    }

    /// Bump the write version of every table in `tables` (lowercased
    /// names). Called after a write is applied, at a point where the
    /// writer still holds the locks that made the write invisible —
    /// see DESIGN.md §7.3 for why bump-after-apply is the safe order.
    pub(crate) fn bump_table_versions(&self, tables: &[String]) {
        for t in tables {
            self.version_counter(t).fetch_add(1, Ordering::AcqRel);
        }
    }

    pub(crate) fn wal_lock(
        &self,
    ) -> parking_lot::MutexGuard<'_, Option<crate::wal::WalWriter>> {
        self.wal.lock()
    }

    fn is_write(stmt: &Statement) -> bool {
        !matches!(
            stmt,
            Statement::Select(_) | Statement::Begin | Statement::Commit | Statement::Rollback
        )
    }

    /// The tables a statement references, lowercased, sorted, deduped —
    /// the barrier set acquired before executing it.
    pub(crate) fn stmt_tables(stmt: &Statement) -> Vec<String> {
        let mut out: Vec<String> = match stmt {
            Statement::Select(s) => {
                let mut v = vec![s.from.table.to_ascii_lowercase()];
                v.extend(s.joins.iter().map(|j| j.table.table.to_ascii_lowercase()));
                v
            }
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::CreateIndex { table, .. }
            | Statement::DropIndex { table, .. } => vec![table.to_ascii_lowercase()],
            Statement::CreateTable { name, .. } | Statement::DropTable { name, .. } => {
                vec![name.to_ascii_lowercase()]
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => Vec::new(),
        };
        out.sort();
        out.dedup();
        out
    }

    /// Execute a statement, logging writes ahead when durable. Takes the
    /// shared barrier of every referenced table (`tables`: the statement's
    /// table set, lowercased/sorted — precomputed so prepared statements
    /// don't re-derive it per call) for the statement's duration, so
    /// in-flight transactions' intermediate states are invisible
    /// (re-entrant for the transaction's own thread).
    fn run_logged(
        &self,
        stmt: &Statement,
        tables: &[String],
        sql: &str,
        params: &[Value],
        undo: Option<&mut crate::txn::UndoLog>,
    ) -> Result<ExecResult> {
        self.stats.bump(stmt);
        // MVCC: a SELECT takes no barrier at all — it pins a snapshot
        // epoch (or reuses the enclosing scope's) and visibility-filters
        // version chains. Writers below keep the shared statement guard,
        // which serializes them against claimed transactions' exclusive
        // barriers.
        if self.mvcc && matches!(stmt, Statement::Select(_)) {
            return self.with_snapshot(|| exec_statement(self, stmt, params, undo));
        }
        let _stmt_barriers = self.barriers.statement_guard(tables);
        if Self::is_write(stmt) {
            let mut wal = self.wal.lock();
            if let Some(w) = wal.as_mut() {
                // drain queued commit groups ahead of this record: they
                // executed before us (their barriers preceded ours), so
                // they must precede us in the log too
                let epoch = self.append_after_queue(w, |w| w.append(sql, params))?;
                note_commit_epoch(epoch);
                // hold the lock across execution so log order == exec order
                let r = exec_statement(self, stmt, params, undo);
                if r.is_ok() {
                    self.bump_table_versions(tables);
                }
                if self.mvcc {
                    // Stamp + publish even on Err: a failed statement
                    // rolled its rows back internally (the stamp is a
                    // no-op) but the allocated epoch must still reach the
                    // watermark.
                    self.mvcc_commit(tables, epoch);
                }
                return r;
            }
            drop(wal);
            let r = exec_statement(self, stmt, params, undo);
            if r.is_ok() {
                self.bump_table_versions(tables);
                if self.mvcc {
                    let epoch = self.alloc_local_epoch();
                    self.mvcc_commit(tables, epoch);
                }
            }
            return r;
        }
        exec_statement(self, stmt, params, undo)
    }

    /// Parse and execute one statement outside any transaction.
    pub fn execute(&self, sql: &str, params: &[Value]) -> Result<ExecResult> {
        let stmt = parse(sql)?;
        let tables = Self::stmt_tables(&stmt);
        self.run_logged(&stmt, &tables, sql, params, None)
    }

    /// Shorthand for `execute` returning the result set of a SELECT.
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<ResultSet> {
        self.execute(sql, params)?
            .rows
            .ok_or_else(|| Error::ExecError("statement returned no rows".into()))
    }

    /// Explain the access plan a SELECT would use, without executing it:
    /// one line per table (chosen index, estimated rows, cost) plus how
    /// ORDER BY and LIMIT are handled. Only SELECT is explainable.
    pub fn explain(&self, sql: &str, params: &[Value]) -> Result<Vec<String>> {
        match parse(sql)? {
            Statement::Select(sel) => crate::executor::explain_select(self, &sel, params),
            _ => Err(Error::ExecError("EXPLAIN supports only SELECT".into())),
        }
    }

    /// Recompute planner statistics for a table right now (they otherwise
    /// refresh lazily once enough writes accumulate — see [`crate::stats`]).
    pub fn analyze_table(&self, name: &str) -> Result<()> {
        self.table(name)?.read().analyze();
        Ok(())
    }

    /// Execute a batch of `;`-separated statements (DDL bootstrap helper).
    /// Statements run independently; the first error aborts the rest.
    pub fn execute_script(&self, script: &str) -> Result<()> {
        for stmt_text in split_statements(script) {
            self.execute(&stmt_text, &[])?;
        }
        Ok(())
    }

    /// Prepare a statement for repeated execution (parse once). This is
    /// the hot path the MCS server uses, mirroring JDBC prepared
    /// statements in the original implementation.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let stmt = parse(sql)?;
        let tables = Self::stmt_tables(&stmt);
        Ok(Prepared { stmt, tables, text: sql.to_owned() })
    }

    /// Execute a prepared statement.
    pub fn execute_prepared(&self, p: &Prepared, params: &[Value]) -> Result<ExecResult> {
        self.run_logged(&p.stmt, &p.tables, &p.text, params, None)
    }

    /// Open a session (connection) with transaction support.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            db: Arc::clone(self),
            txn: None,
            pending_log: Vec::new(),
            allowed: None,
            txn_id: 0,
        }
    }

    /// Run `f` as one atomic transaction over the tables named in
    /// `claims`.
    ///
    /// The claimed tables' barriers are acquired up front in a fixed
    /// global order (sorted by name) — exclusive for [`Access::Write`],
    /// shared for [`Access::Read`] — and held until the transaction ends,
    /// so the closure's intermediate states are invisible to every other
    /// statement and its reads are stable. Because all acquisition
    /// sequences follow the same order, transactions cannot deadlock.
    ///
    /// On `Ok` the transaction commits: its writes become visible and are
    /// journalled to the WAL as a single atomic group (crash recovery
    /// replays all of them or none). On `Err` every write is rolled back.
    ///
    /// Rules inside the closure:
    ///
    /// * All **writes** must go through the provided [`Session`]; a write
    ///   through a plain [`Database`] handle would bypass undo and commit
    ///   journalling.
    /// * Statements may only touch claimed tables ([`Error::TxnState`]
    ///   otherwise); reads of claimed tables may use either the session or
    ///   the `Database` handle (barrier acquisition is re-entrant).
    /// * Nesting a transaction that shares a table with an open one on the
    ///   same thread is rejected; nesting over disjoint tables is
    ///   unsupported (not detected).
    ///
    /// If the closure panics, barriers are released during unwind but
    /// in-memory state may retain the partial writes (they are never
    /// journalled); treat a panic mid-transaction as fatal for the
    /// process, not a recoverable error.
    pub fn transaction<T, E>(
        self: &Arc<Self>,
        claims: &[(&str, Access)],
        f: impl FnOnce(&mut Session) -> std::result::Result<T, E>,
    ) -> std::result::Result<T, E>
    where
        E: From<Error>,
    {
        // Normalize: lowercase, sort, dedup with Write winning over Read.
        let mut norm: Vec<(String, Access)> =
            claims.iter().map(|(n, a)| (n.to_ascii_lowercase(), *a)).collect();
        norm.sort_by(|a, b| a.0.cmp(&b.0));
        norm.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                if next.1 == Access::Write {
                    kept.1 = Access::Write;
                }
                true
            } else {
                false
            }
        });
        // MVCC: a pure-read transaction takes no barriers at all — it pins
        // one snapshot for the closure, giving repeatable reads without
        // blocking (or being blocked by) any writer. A transaction with
        // any Write claim upgrades every claim to exclusive: barriers are
        // writer-vs-writer only now, and its reads see latest state, which
        // its exclusive coverage keeps stable.
        let pure_read = norm.iter().all(|(_, a)| *a == Access::Read);
        let barriers = if self.mvcc && pure_read {
            None
        } else if self.mvcc {
            let upgraded: Vec<(String, Access)> =
                norm.iter().map(|(n, _)| (n.clone(), Access::Write)).collect();
            Some(self.barriers.transaction_guard(&upgraded).map_err(E::from)?)
        } else {
            Some(self.barriers.transaction_guard(&norm).map_err(E::from)?)
        };
        let _snapshot = if self.mvcc && pure_read { self.snapshot_scope() } else { None };
        let mut session = self.session();
        session.begin().map_err(E::from)?;
        session.allowed = Some(norm.into_iter().map(|(n, _)| n).collect());
        let result = f(&mut session);
        match result {
            Ok(v) => match session.commit_publish() {
                // The group is enqueued: its log position can no longer be
                // reordered against any conflicting write (later grouped
                // commits queue behind it; later direct appends drain the
                // queue first — see `Database::append_after_queue`), so
                // the barriers may drop before the sync — the next writer
                // of these tables executes while the batch leader is in
                // `sync_data`, which is what lets serialized workloads
                // share fsyncs. Durability still gates the return.
                Ok(Some(pending)) => {
                    drop(barriers);
                    pending.finish().map_err(E::from)?;
                    Ok(v)
                }
                Ok(None) => {
                    drop(barriers);
                    Ok(v)
                }
                Err(e) => {
                    drop(barriers);
                    Err(E::from(e))
                }
            },
            Err(e) => {
                // Preserve the original error even if rollback also fails.
                let _ = session.rollback();
                drop(barriers); // release only after rollback finished
                Err(e)
            }
        }
    }
}

/// A parsed, reusable statement. Carries its table set (lowercased,
/// sorted) so barrier acquisition and transaction-claim checks don't
/// re-derive it on every execution.
#[derive(Debug, Clone)]
pub struct Prepared {
    stmt: Statement,
    tables: Vec<String>,
    text: String,
}

impl Prepared {
    /// The original SQL text.
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// Split a script on `;` while respecting string literals.
fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// A commit whose WAL group is enqueued (log position fixed) but whose
/// durability has not yet been paid. Produced by `Session::commit_publish`
/// under [`Durability::Group`]; `finish` parks on the commit queue until a
/// batch leader has synced the group.
pub(crate) struct PendingCommit {
    db: Arc<Database>,
    ticket: u64,
    max_wait: std::time::Duration,
    max_batch: usize,
}

impl PendingCommit {
    pub(crate) fn finish(self) -> Result<()> {
        self.db.group_commit_wait(self.ticket, self.max_wait, self.max_batch)
    }
}

/// A connection-like handle supporting BEGIN/COMMIT/ROLLBACK.
///
/// Isolation is per-statement (table-level locks are held only for the
/// duration of each statement); the transaction provides atomicity via
/// undo, not serializability — see [`crate::txn`].
pub struct Session {
    db: Arc<Database>,
    txn: Option<UndoLog>,
    /// Writes made inside the open transaction, logged to the WAL only at
    /// COMMIT so a rolled-back transaction never replays.
    pending_log: Vec<(String, Vec<Value>)>,
    /// When the transaction was opened via [`Database::transaction`], the
    /// claimed table set (lowercased, sorted); every statement is checked
    /// against it. `None` for plain `BEGIN` sessions (legacy mode, no
    /// barrier isolation).
    allowed: Option<Vec<String>>,
    /// Id journalled in the transaction's Begin/Commit WAL frames.
    txn_id: u64,
}

impl Session {
    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// True if a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Begin a transaction. Nested transactions are rejected.
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(Error::TxnState("transaction already open".into()));
        }
        self.txn = Some(UndoLog::default());
        self.txn_id = self.db.next_txn_id.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(())
    }

    /// Commit: discard the undo log and journal the transaction's writes
    /// to the write-ahead log as one `Begin, Stmt…, Commit` group — a
    /// single buffered write, and crash recovery replays the group
    /// all-or-nothing. Under [`Durability::Always`] the commit syncs the
    /// log itself; under [`Durability::Group`] it hands the encoded group
    /// to the commit queue and returns once a batch leader has synced it
    /// (see [`crate::group_commit`]).
    pub fn commit(&mut self) -> Result<()> {
        match self.commit_publish()? {
            None => Ok(()),
            Some(wait) => wait.finish(),
        }
    }

    /// First half of a commit: close the transaction and fix the group's
    /// position in the log. Under [`Durability::Always`] this performs the
    /// whole append-and-sync and returns `None`; under
    /// [`Durability::Group`] it enqueues the encoded group (the commit
    /// queue is FIFO, so the log position is now decided) and returns the
    /// pending wait, which the caller finishes with
    /// [`PendingCommit::finish`] — crucially, *after* releasing the
    /// transaction's barriers, so the next conflicting transaction can
    /// execute and join the batch while this one's sync is in flight.
    pub(crate) fn commit_publish(&mut self) -> Result<Option<PendingCommit>> {
        let txn =
            self.txn.take().ok_or_else(|| Error::TxnState("no open transaction".into()))?;
        // MVCC: the tables whose pending row stamps this commit must
        // convert to its epoch (captured before the undo log is dropped).
        // `Some` even when the undo log is empty — a statement can journal
        // to the WAL yet match zero rows, and the durable arms below
        // allocate an epoch at the log append either way; every allocated
        // epoch must publish or the visibility watermark stalls behind
        // the gap (`mvcc_commit` over zero tables is just the publish).
        let mvcc_touched: Option<Vec<String>> =
            self.db.is_mvcc().then(|| txn.touched_tables());
        drop(txn);
        self.allowed = None;
        let records = std::mem::take(&mut self.pending_log);
        if records.is_empty() || !self.db.is_durable() {
            // Non-durable commits still need an epoch: the writes are
            // applied and their stamps must become visible. Nothing
            // touched means nothing stamped — skip the allocation, no
            // epoch exists here to leak.
            if let Some(tables) = mvcc_touched.as_ref().filter(|t| !t.is_empty()) {
                let epoch = self.db.alloc_local_epoch();
                self.db.mvcc_commit(tables, epoch);
            }
            return Ok(None);
        }
        match self.db.effective_durability() {
            Durability::Always => {
                let txn_id = self.txn_id;
                let mut wal = self.db.wal_lock();
                if let Some(w) = wal.as_mut() {
                    // A runtime flip from `Group` to `Always` can leave
                    // groups in the commit queue; they must reach the log
                    // before this (later-executed) transaction.
                    match self.db.append_after_queue(w, |w| {
                        w.append_transaction(txn_id, &records)
                    }) {
                        Ok(epoch) => {
                            note_commit_epoch(epoch);
                            if let Some(tables) = &mvcc_touched {
                                self.db.mvcc_commit(tables, epoch);
                            }
                        }
                        Err(e) => {
                            // A failed append leaves the in-memory writes
                            // applied (commit errors don't undo — same as
                            // the barrier engine), so their stamps must
                            // still become visible under a fresh epoch.
                            // The failed epoch itself was published inside
                            // `append_after_queue`.
                            if let Some(tables) =
                                mvcc_touched.as_ref().filter(|t| !t.is_empty())
                            {
                                let epoch = self.db.alloc_local_epoch();
                                self.db.mvcc_commit(tables, epoch);
                            }
                            return Err(e);
                        }
                    }
                } else if let Some(tables) = mvcc_touched.as_ref().filter(|t| !t.is_empty()) {
                    let epoch = self.db.alloc_local_epoch();
                    self.db.mvcc_commit(tables, epoch);
                }
                Ok(None)
            }
            Durability::Group { max_wait, max_batch } => {
                let group = crate::wal::WalWriter::encode_transaction(self.txn_id, &records);
                let (ticket, epoch) = self.db.group_enqueue(group, true);
                note_commit_epoch(epoch);
                // Visibility before durability, matching the existing
                // Group semantics (barriers drop before the sync): the
                // log position is fixed, so stamp and publish now.
                if let Some(tables) = &mvcc_touched {
                    self.db.mvcc_commit(tables, epoch);
                }
                Ok(Some(PendingCommit {
                    db: Arc::clone(&self.db),
                    ticket,
                    max_wait,
                    max_batch,
                }))
            }
            Durability::Async { max_wait, max_batch } => {
                // Same enqueue as `Group` (log position fixed, FIFO), but
                // nobody parks: the caller gets the commit epoch via
                // `Database::last_commit_epoch` and a background flusher
                // pays the durability later. `wants_result = false` keeps
                // the results map from accumulating entries no one reads.
                let group = crate::wal::WalWriter::encode_transaction(self.txn_id, &records);
                let (_, epoch) = self.db.group_enqueue(group, false);
                note_commit_epoch(epoch);
                if let Some(tables) = &mvcc_touched {
                    self.db.mvcc_commit(tables, epoch);
                }
                self.db.ensure_flusher(max_wait, max_batch);
                Ok(None)
            }
        }
    }

    /// Roll back: apply the undo log in reverse; buffered WAL records are
    /// discarded unlogged.
    pub fn rollback(&mut self) -> Result<()> {
        let log =
            self.txn.take().ok_or_else(|| Error::TxnState("no open transaction".into()))?;
        self.allowed = None;
        self.pending_log.clear();
        // Undo mutates the touched tables back to their old contents, so
        // their write versions must advance too (a cache entry filled from
        // the pre-rollback state would otherwise validate against the
        // restored state). Bump after the undo is applied, while a claimed
        // transaction's barriers are still held by the caller.
        let touched = log.touched_tables();
        let r = log.rollback();
        self.db.bump_table_versions(&touched);
        r
    }

    /// Parse and execute one statement in this session. BEGIN/COMMIT/
    /// ROLLBACK are handled here; writes inside a transaction are recorded
    /// for rollback.
    pub fn execute(&mut self, sql: &str, params: &[Value]) -> Result<ExecResult> {
        let stmt = parse(sql)?;
        match stmt {
            Statement::Begin => {
                self.begin()?;
                Ok(ExecResult::default())
            }
            Statement::Commit => {
                self.commit()?;
                Ok(ExecResult::default())
            }
            Statement::Rollback => {
                self.rollback()?;
                Ok(ExecResult::default())
            }
            other => {
                let tables = Database::stmt_tables(&other);
                self.run(&other, &tables, sql, params)
            }
        }
    }

    /// Execute a prepared statement in this session.
    pub fn execute_prepared(&mut self, p: &Prepared, params: &[Value]) -> Result<ExecResult> {
        self.run(&p.stmt, &p.tables, &p.text, params)
    }

    fn run(
        &mut self,
        stmt: &Statement,
        tables: &[String],
        sql: &str,
        params: &[Value],
    ) -> Result<ExecResult> {
        let claimed = self.txn.is_some() && self.allowed.is_some();
        if claimed {
            // a claimed transaction may only touch its declared tables —
            // touching any other would bypass the barriers acquired at
            // begin and could deadlock or see/expose unstable state
            let allowed = self.allowed.as_ref().unwrap();
            for t in tables {
                if !allowed.contains(t) {
                    return Err(Error::TxnState(format!(
                        "table '{t}' not declared by this transaction"
                    )));
                }
            }
        }
        if self.txn.is_some() && Database::is_write(stmt) {
            // inside a transaction: execute with undo, buffer the log
            // record for commit time (only when a WAL will consume it)
            self.db.stats.bump(stmt);
            let r = exec_statement(&self.db, stmt, params, self.txn.as_mut())?;
            // bump while the transaction's exclusive barriers (claimed
            // mode) still hide the write; bump-before-visible only causes
            // spurious cache misses, never stale hits
            self.db.bump_table_versions(tables);
            if self.db.is_durable() {
                self.pending_log.push((sql.to_owned(), params.to_vec()));
            }
            Ok(r)
        } else if claimed {
            // a claimed transaction's reads: its barriers already cover
            // every table checked above, so the statement-scope acquire
            // would be a pure re-entrant no-op — skip it
            self.db.stats.bump(stmt);
            exec_statement(&self.db, stmt, params, self.txn.as_mut())
        } else {
            self.db.run_logged(stmt, tables, sql, params, self.txn.as_mut())
        }
    }

    /// Run `f` inside a transaction: commit on `Ok`, roll back on `Err`.
    pub fn with_transaction<T>(
        &mut self,
        f: impl FnOnce(&mut Session) -> Result<T>,
    ) -> Result<T> {
        self.begin()?;
        match f(self) {
            Ok(v) => {
                self.commit()?;
                Ok(v)
            }
            Err(e) => {
                // Preserve the original error even if rollback also fails.
                let _ = self.rollback();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.execute_script(
            "CREATE TABLE files (
                id INTEGER PRIMARY KEY AUTO_INCREMENT,
                name VARCHAR(255) NOT NULL,
                size INTEGER,
                valid BOOLEAN DEFAULT TRUE
            );
            CREATE UNIQUE INDEX by_name ON files (name);
            CREATE TABLE attrs (
                id INTEGER PRIMARY KEY AUTO_INCREMENT,
                file_id INTEGER NOT NULL,
                name VARCHAR(64) NOT NULL,
                value VARCHAR(255)
            );
            CREATE INDEX attrs_by_file ON attrs (file_id, name);",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_select_roundtrip() {
        let db = db();
        let r = db
            .execute("INSERT INTO files (name, size) VALUES ('a', 10), ('b', 20)", &[])
            .unwrap();
        assert_eq!(r.rows_affected, 2);
        assert_eq!(r.last_insert_id, Some(2));
        let rs = db.query("SELECT name, size FROM files WHERE size > 15", &[]).unwrap();
        assert_eq!(rs.columns, vec!["name", "size"]);
        assert_eq!(rs.rows, vec![vec![Value::from("b"), Value::Int(20)]]);
    }

    #[test]
    fn defaults_apply() {
        let db = db();
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        let rs = db.query("SELECT valid, size FROM files", &[]).unwrap();
        assert_eq!(rs.rows[0], vec![Value::Bool(true), Value::Null]);
    }

    #[test]
    fn params_bind_in_order() {
        let db = db();
        db.execute("INSERT INTO files (name, size) VALUES (?, ?)", &["a".into(), 5i64.into()])
            .unwrap();
        let rs = db
            .query("SELECT size FROM files WHERE name = ?", &["a".into()])
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(5));
    }

    #[test]
    fn unique_violation_surfaces() {
        let db = db();
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        let err = db.execute("INSERT INTO files (name) VALUES ('a')", &[]);
        assert!(matches!(err, Err(Error::UniqueViolation { .. })));
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let db = db();
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        let err = db.execute("INSERT INTO files (name) VALUES ('b'), ('a')", &[]);
        assert!(err.is_err());
        let rs = db.query("SELECT COUNT(*) FROM files", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(1)); // 'b' rolled back
    }

    #[test]
    fn update_and_delete() {
        let db = db();
        db.execute("INSERT INTO files (name, size) VALUES ('a', 1), ('b', 2)", &[]).unwrap();
        let r = db.execute("UPDATE files SET size = 9 WHERE name = 'a'", &[]).unwrap();
        assert_eq!(r.rows_affected, 1);
        let r = db.execute("DELETE FROM files WHERE size = 9", &[]).unwrap();
        assert_eq!(r.rows_affected, 1);
        let rs = db.query("SELECT COUNT(*) AS n FROM files", &[]).unwrap();
        assert_eq!(rs.columns, vec!["n"]);
        assert_eq!(rs.rows[0][0], Value::Int(1));
    }

    #[test]
    fn join_with_index_lookup() {
        let db = db();
        db.execute("INSERT INTO files (name) VALUES ('a'), ('b')", &[]).unwrap();
        db.execute(
            "INSERT INTO attrs (file_id, name, value) VALUES (1, 'ch', 'H1'), (2, 'ch', 'L1')",
            &[],
        )
        .unwrap();
        let rs = db
            .query(
                "SELECT f.name FROM files f JOIN attrs a ON f.id = a.file_id \
                 WHERE a.name = 'ch' AND a.value = 'L1'",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("b")]]);
    }

    #[test]
    fn self_join() {
        let db = db();
        db.execute("INSERT INTO files (name, size) VALUES ('a', 1), ('b', 1)", &[]).unwrap();
        let rs = db
            .query(
                "SELECT x.name, y.name FROM files x JOIN files y ON x.size = y.size \
                 WHERE x.name = 'a' AND y.name = 'b'",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn order_limit_offset() {
        let db = db();
        db.execute(
            "INSERT INTO files (name, size) VALUES ('c', 3), ('a', 1), ('d', 4), ('b', 2)",
            &[],
        )
        .unwrap();
        let rs = db
            .query("SELECT name FROM files ORDER BY size DESC LIMIT 2 OFFSET 1", &[])
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("c")], vec![Value::from("b")]]);
    }

    #[test]
    fn aggregates() {
        let db = db();
        db.execute("INSERT INTO files (name, size) VALUES ('a', 1), ('b', 3), ('c', 2)", &[])
            .unwrap();
        let rs = db
            .query("SELECT COUNT(*), MIN(size), MAX(size) FROM files WHERE size > 1", &[])
            .unwrap();
        assert_eq!(rs.rows[0], vec![Value::Int(2), Value::Int(2), Value::Int(3)]);
        // COUNT(col) skips NULLs
        db.execute("INSERT INTO files (name) VALUES ('d')", &[]).unwrap();
        let rs = db.query("SELECT COUNT(size) FROM files", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn session_rollback_restores_rows() {
        let db = db();
        let mut s = db.session();
        s.execute("INSERT INTO files (name) VALUES ('keep')", &[]).unwrap();
        s.execute("BEGIN", &[]).unwrap();
        s.execute("INSERT INTO files (name) VALUES ('tmp')", &[]).unwrap();
        s.execute("UPDATE files SET size = 5 WHERE name = 'keep'", &[]).unwrap();
        s.execute("DELETE FROM files WHERE name = 'keep'", &[]).unwrap();
        s.execute("ROLLBACK", &[]).unwrap();
        let rs = db.query("SELECT name, size FROM files", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("keep"), Value::Null]]);
    }

    #[test]
    fn session_commit_keeps_rows() {
        let db = db();
        let mut s = db.session();
        s.with_transaction(|s| {
            s.execute("INSERT INTO files (name) VALUES ('x')", &[])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM files", &[]).unwrap().rows[0][0], Value::Int(1));
    }

    #[test]
    fn with_transaction_rolls_back_on_error() {
        let db = db();
        let mut s = db.session();
        let r: Result<()> = s.with_transaction(|s| {
            s.execute("INSERT INTO files (name) VALUES ('x')", &[])?;
            Err(Error::ExecError("boom".into()))
        });
        assert!(r.is_err());
        assert!(!s.in_transaction());
        assert_eq!(db.query("SELECT COUNT(*) FROM files", &[]).unwrap().rows[0][0], Value::Int(0));
    }

    #[test]
    fn txn_state_errors() {
        let db = db();
        let mut s = db.session();
        assert!(s.commit().is_err());
        assert!(s.rollback().is_err());
        s.begin().unwrap();
        assert!(s.begin().is_err());
    }

    #[test]
    fn transaction_commits_on_ok() {
        let db = db();
        let id = db
            .transaction(&[("files", Access::Write), ("attrs", Access::Write)], |s| {
                let r = s.execute("INSERT INTO files (name) VALUES ('f')", &[])?;
                let id = r.last_insert_id.unwrap();
                s.execute(
                    "INSERT INTO attrs (file_id, name) VALUES (?, 'a')",
                    &[Value::Int(id)],
                )?;
                Ok::<_, Error>(id)
            })
            .unwrap();
        assert_eq!(
            db.query("SELECT COUNT(*) FROM attrs WHERE file_id = ?", &[Value::Int(id)])
                .unwrap()
                .rows[0][0],
            Value::Int(1)
        );
    }

    #[test]
    fn transaction_rolls_back_all_statements_on_err() {
        let db = db();
        let r: std::result::Result<(), Error> =
            db.transaction(&[("files", Access::Write), ("attrs", Access::Write)], |s| {
                s.execute("INSERT INTO files (name) VALUES ('f')", &[])?;
                s.execute("INSERT INTO attrs (file_id, name) VALUES (1, 'a')", &[])?;
                Err(Error::ExecError("abort".into()))
            });
        assert!(r.is_err());
        assert_eq!(db.query("SELECT COUNT(*) FROM files", &[]).unwrap().rows[0][0], Value::Int(0));
        assert_eq!(db.query("SELECT COUNT(*) FROM attrs", &[]).unwrap().rows[0][0], Value::Int(0));
    }

    #[test]
    fn transaction_rejects_undeclared_table() {
        let db = db();
        let r: std::result::Result<(), Error> =
            db.transaction(&[("files", Access::Write)], |s| {
                s.execute("INSERT INTO attrs (file_id, name) VALUES (1, 'a')", &[])?;
                Ok(())
            });
        assert!(matches!(r, Err(Error::TxnState(_))));
        // and the check applies to reads too
        let r: std::result::Result<(), Error> =
            db.transaction(&[("files", Access::Write)], |s| {
                s.execute("SELECT * FROM attrs", &[])?;
                Ok(())
            });
        assert!(matches!(r, Err(Error::TxnState(_))));
    }

    #[test]
    fn transaction_reads_claimed_tables_through_db_handle() {
        let db = db();
        db.execute("INSERT INTO files (name, size) VALUES ('f', 1)", &[]).unwrap();
        // re-entrancy: mid-transaction reads via the plain handle work
        db.transaction(&[("files", Access::Write)], |s| {
            let n = s.database().query("SELECT COUNT(*) FROM files", &[])?.rows[0][0].clone();
            assert_eq!(n, Value::Int(1));
            s.execute("UPDATE files SET size = 2 WHERE name = 'f'", &[])?;
            Ok::<_, Error>(())
        })
        .unwrap();
    }

    #[test]
    fn in_flight_transaction_writes_are_invisible() {
        use std::sync::mpsc;
        let db = db();
        let (in_txn_tx, in_txn_rx) = mpsc::channel();
        let (observed_tx, observed_rx) = mpsc::channel::<i64>();
        let db2 = Arc::clone(&db);
        let reader = std::thread::spawn(move || {
            in_txn_rx.recv().unwrap(); // wait until the txn has written row 1
            // this query must block until the transaction commits, then
            // see both rows — never the intermediate single-row state
            let rs = db2.query("SELECT COUNT(*) FROM files", &[]).unwrap();
            let Value::Int(n) = rs.rows[0][0] else { panic!("count") };
            observed_tx.send(n).unwrap();
        });
        db.transaction(&[("files", Access::Write)], |s| {
            s.execute("INSERT INTO files (name) VALUES ('one')", &[])?;
            in_txn_tx.send(()).unwrap();
            // give the reader a chance to (incorrectly) observe row 1 only
            std::thread::sleep(std::time::Duration::from_millis(60));
            s.execute("INSERT INTO files (name) VALUES ('two')", &[])?;
            Ok::<_, Error>(())
        })
        .unwrap();
        assert_eq!(observed_rx.recv().unwrap(), 2, "reader saw a partial transaction");
        reader.join().unwrap();
    }

    #[test]
    fn write_claims_dedup_over_read() {
        let db = db();
        // same table claimed twice with different access: Write must win
        db.transaction(&[("files", Access::Read), ("FILES", Access::Write)], |s| {
            s.execute("INSERT INTO files (name) VALUES ('f')", &[])?;
            Ok::<_, Error>(())
        })
        .unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM files", &[]).unwrap().rows[0][0], Value::Int(1));
    }

    #[test]
    fn ddl_and_drops() {
        let db = db();
        assert!(db.execute("CREATE TABLE files (id INTEGER)", &[]).is_err());
        db.execute("CREATE TABLE IF NOT EXISTS files (id INTEGER)", &[]).unwrap();
        db.execute("DROP TABLE files", &[]).unwrap();
        assert!(db.execute("DROP TABLE files", &[]).is_err());
        db.execute("DROP TABLE IF EXISTS files", &[]).unwrap();
        assert!(db.query("SELECT * FROM files", &[]).is_err());
    }

    #[test]
    fn script_splitting_respects_strings() {
        let db = Arc::new(Database::new());
        db.execute_script(
            "CREATE TABLE t (s VARCHAR(32)); INSERT INTO t (s) VALUES ('a;b');",
        )
        .unwrap();
        let rs = db.query("SELECT s FROM t", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::from("a;b"));
    }

    #[test]
    fn table_versions_bump_on_writes_not_reads() {
        let db = db();
        let v0 = db.table_version("files");
        db.query("SELECT * FROM files", &[]).unwrap();
        assert_eq!(db.table_version("files"), v0, "SELECT must not bump");
        let attrs_v = db.table_version("attrs");
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        let v1 = db.table_version("files");
        assert!(v1 > v0, "INSERT must bump");
        assert_eq!(db.table_version("attrs"), attrs_v, "untouched table stays put");
        assert_eq!(db.table_version("never_written"), 0);
        db.execute("UPDATE files SET size = 1 WHERE name = 'a'", &[]).unwrap();
        db.execute("DELETE FROM files WHERE name = 'a'", &[]).unwrap();
        assert!(db.table_version("files") > v1);
        // case-insensitive, and the vector snapshot matches the scalars
        assert_eq!(db.table_version("FILES"), db.table_version("files"));
        assert_eq!(
            db.version_vector(&["files", "attrs"]),
            vec![db.table_version("files"), db.table_version("attrs")]
        );
    }

    #[test]
    fn table_versions_bump_per_transaction_statement() {
        let db = db();
        let v0 = db.table_version("files");
        let a0 = db.table_version("attrs");
        db.transaction(&[("files", Access::Write), ("attrs", Access::Write)], |s| {
            s.execute("INSERT INTO files (name) VALUES ('f')", &[])?;
            s.execute("INSERT INTO attrs (file_id, name) VALUES (1, 'a')", &[])?;
            Ok::<_, Error>(())
        })
        .unwrap();
        assert!(db.table_version("files") > v0);
        assert!(db.table_version("attrs") > a0);
    }

    #[test]
    fn table_versions_bump_on_rollback() {
        let db = db();
        db.execute("INSERT INTO files (name) VALUES ('keep')", &[]).unwrap();
        let r: std::result::Result<(), Error> =
            db.transaction(&[("files", Access::Write)], |s| {
                s.execute("UPDATE files SET size = 9 WHERE name = 'keep'", &[])?;
                Err(Error::ExecError("abort".into()))
            });
        assert!(r.is_err());
        // the update bumped once, the undo that reverted it bumped again —
        // a cache entry stamped mid-transaction can never validate
        assert!(db.table_version("files") >= 3);
        // and a failed statement that wrote nothing doesn't have to bump
        let v = db.table_version("files");
        let _ = db.execute("INSERT INTO files (name) VALUES ('keep')", &[]);
        assert!(db.table_version("files") >= v);
    }

    #[test]
    fn table_versions_survive_drop_and_recreate() {
        let db = db();
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        let v = db.table_version("files");
        db.execute("DROP TABLE files", &[]).unwrap();
        assert!(db.table_version("files") > v, "DROP must bump");
        let v = db.table_version("files");
        db.execute("CREATE TABLE files (id INTEGER)", &[]).unwrap();
        assert!(db.table_version("files") > v, "recreate keeps counting up");
    }

    #[test]
    fn stats_count_statements() {
        let db = db();
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        db.query("SELECT * FROM files", &[]).unwrap();
        assert_eq!(db.stats.inserts.load(Ordering::Relaxed), 1);
        assert_eq!(db.stats.selects.load(Ordering::Relaxed), 1);
    }

    fn mvcc_db() -> Arc<Database> {
        let db = Arc::new(Database::new_mvcc());
        db.execute_script(
            "CREATE TABLE files (
                id INTEGER PRIMARY KEY AUTO_INCREMENT,
                name VARCHAR(255) NOT NULL,
                size INTEGER
            );
            CREATE UNIQUE INDEX by_name ON files (name);",
        )
        .unwrap();
        db
    }

    fn count_files(db: &Database) -> i64 {
        let rs = db.query("SELECT COUNT(*) FROM files", &[]).unwrap();
        let Value::Int(n) = rs.rows[0][0] else { panic!("count") };
        n
    }

    #[test]
    fn mvcc_reader_does_not_block_on_open_write_transaction() {
        let db = mvcc_db();
        db.execute("INSERT INTO files (name) VALUES ('base')", &[]).unwrap();
        db.transaction(&[("files", Access::Write)], |s| {
            s.execute("INSERT INTO files (name) VALUES ('in-flight')", &[])?;
            // Under the barrier engine this join would deadlock: the
            // reader would park on the exclusive barrier until the
            // transaction ends. Under MVCC it completes immediately and
            // sees only committed state.
            let db2 = Arc::clone(&db);
            let seen = std::thread::spawn(move || count_files(&db2)).join().unwrap();
            assert_eq!(seen, 1, "reader saw uncommitted transaction state");
            // ...while the transaction itself reads its own writes
            assert_eq!(count_files(s.database()), 2);
            Ok::<_, Error>(())
        })
        .unwrap();
        assert_eq!(count_files(&db), 2, "committed state visible to everyone");
    }

    #[test]
    fn mvcc_pure_read_transaction_is_repeatable() {
        let db = mvcc_db();
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        db.transaction(&[("files", Access::Read)], |s| {
            assert_eq!(count_files(s.database()), 1);
            // A writer commits mid-transaction without blocking (no
            // barriers are held) ...
            let db2 = Arc::clone(&db);
            std::thread::spawn(move || {
                db2.execute("INSERT INTO files (name) VALUES ('b')", &[]).unwrap();
            })
            .join()
            .unwrap();
            // ... but this transaction's snapshot was pinned at its start
            assert_eq!(count_files(s.database()), 1, "snapshot must be repeatable");
            Ok::<_, Error>(())
        })
        .unwrap();
        assert_eq!(count_files(&db), 2, "new snapshots see the commit");
    }

    #[test]
    fn mvcc_snapshot_pinned_before_commit_never_sees_it() {
        let db = mvcc_db();
        db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
        let before = db.pin_snapshot().unwrap();
        db.execute("INSERT INTO files (name) VALUES ('b')", &[]).unwrap();
        let after = db.pin_snapshot().unwrap();
        let db2 = Arc::clone(&db);
        let (e_before, e_after) = (before.epoch(), after.epoch());
        std::thread::spawn(move || {
            assert_eq!(db2.with_snapshot_at(e_before, || count_files(&db2)), 1);
            assert_eq!(db2.with_snapshot_at(e_after, || count_files(&db2)), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn mvcc_vacuum_reclaims_versions_and_counts() {
        let db = mvcc_db();
        db.execute("INSERT INTO files (name, size) VALUES ('a', 1)", &[]).unwrap();
        db.execute("UPDATE files SET size = 2 WHERE name = 'a'", &[]).unwrap();
        db.execute("UPDATE files SET size = 3 WHERE name = 'a'", &[]).unwrap();
        assert!(db.wal_stats().versions_created_count() >= 2);
        let reclaimed = db.vacuum();
        assert_eq!(reclaimed, 2, "both superseded images reclaimable");
        assert_eq!(db.wal_stats().vacuum_run_count(), 1);
        assert_eq!(db.wal_stats().versions_vacuumed_count(), 2);
        // a pinned snapshot holds the horizon: nothing further to reclaim
        let pin = db.pin_snapshot().unwrap();
        db.execute("UPDATE files SET size = 4 WHERE name = 'a'", &[]).unwrap();
        assert_eq!(db.vacuum(), 0, "pinned snapshot still needs size=3");
        drop(pin);
        assert_eq!(db.vacuum(), 1);
        assert_eq!(count_files(&db), 1);
    }

    #[test]
    fn mvcc_rollback_restores_state_and_indexes() {
        let db = mvcc_db();
        db.execute("INSERT INTO files (name, size) VALUES ('keep', 1)", &[]).unwrap();
        let r: std::result::Result<(), Error> =
            db.transaction(&[("files", Access::Write)], |s| {
                s.execute("INSERT INTO files (name) VALUES ('tmp')", &[])?;
                s.execute("UPDATE files SET size = 9 WHERE name = 'keep'", &[])?;
                s.execute("DELETE FROM files WHERE name = 'keep'", &[])?;
                Err(Error::ExecError("abort".into()))
            });
        assert!(r.is_err());
        let rs = db.query("SELECT name, size FROM files", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("keep"), Value::Int(1)]]);
        // the rolled-back name is free again
        db.execute("INSERT INTO files (name) VALUES ('tmp')", &[]).unwrap();
        db.table("files").unwrap().read().check_integrity().unwrap();
    }
}
