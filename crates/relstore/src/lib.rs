//! # relstore — an embedded relational storage engine
//!
//! `relstore` is the database substrate of this reproduction of
//! *"A Metadata Catalog Service for Data Intensive Applications"* (SC'03).
//! The original MCS stored its catalog in MySQL 4.1; `relstore` plays that
//! role: typed columns, B-tree indexes, an access-path planner, a SQL
//! subset (CREATE TABLE/INDEX, INSERT, SELECT with inner joins, UPDATE,
//! DELETE, ORDER BY/LIMIT, aggregates), prepared statements, and sessions
//! with undo-based transactions.
//!
//! Concurrency follows the MyISAM model the MCS actually ran on:
//! table-level reader-writer locks, per-statement isolation.
//!
//! ```
//! use relstore::{Database, Value};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::new());
//! db.execute_script(
//!     "CREATE TABLE logical_files (
//!          id INTEGER PRIMARY KEY AUTO_INCREMENT,
//!          name VARCHAR(255) NOT NULL,
//!          valid BOOLEAN DEFAULT TRUE);
//!      CREATE UNIQUE INDEX lf_name ON logical_files (name);",
//! ).unwrap();
//! db.execute("INSERT INTO logical_files (name) VALUES (?)",
//!            &[Value::from("run_H1_0042.gwf")]).unwrap();
//! let rs = db.query("SELECT id FROM logical_files WHERE name = ?",
//!                   &[Value::from("run_H1_0042.gwf")]).unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod epoch;
pub mod error;
pub mod executor;
pub mod group_commit;
pub mod index;
pub mod lock;
pub mod mvcc;
pub mod planner;
pub mod predicate;
pub mod row;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

pub use db::{
    current_snapshot, snapshot_row, Database, Durability, Prepared, Session, SnapshotGuard,
    Stats,
};
pub use error::{Error, Result};
pub use executor::{ExecResult, ResultSet};
pub use index::{Index, IndexDef, IndexKey};
pub use lock::Access;
pub use mvcc::{MvccState, SnapshotPin};
pub use predicate::{CmpOp, Expr};
pub use row::{Row, RowId, StoredRow};
pub use schema::{ColumnDef, TableSchema};
pub use stats::{ColumnStats, TableStatistics};
pub use table::Table;
pub use value::{Date, DateTime, Time, Value, ValueType};
pub use wal::{SyncPolicy, WalStats};
