//! Table statistics for the cost-based planner.
//!
//! The paper's MySQL deployment leaned on the optimizer's index
//! statistics to order predicate evaluation; relstore keeps the same
//! information per table — live row count plus per-column distinct and
//! NULL counts — so [`crate::planner`] can cost access paths by estimated
//! selectivity instead of structural heuristics.
//!
//! Statistics are *advisory*: they never affect answers, only plan
//! choice, so they are maintained lazily. Every mutating operation bumps
//! a modification counter; [`Table::statistics`](crate::table::Table)
//! re-analyzes (a full scan of live rows) only when the counter says the
//! cached snapshot has drifted past [`STALE_FRACTION`] of the rows it
//! described. A bulk delete therefore leaves stats stale until the next
//! planning call crosses the threshold — the planner guards against that
//! window by clamping every estimate to the *live* row count, which is
//! always exact.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use crate::value::Value;

/// Re-analyze once modifications exceed `max(MIN_STALE_WRITES,
/// analyzed_rows / STALE_FRACTION)`.
pub const STALE_FRACTION: u64 = 4;

/// Floor on the staleness threshold so tiny tables don't re-analyze on
/// every write.
pub const MIN_STALE_WRITES: u64 = 64;

/// Distribution summary of one column, over the live rows at analyze
/// time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values.
    pub distinct: u64,
    /// Number of NULL entries.
    pub nulls: u64,
}

/// Snapshot of one table's statistics, produced by
/// [`Table::analyze`](crate::table::Table::analyze).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStatistics {
    /// Live rows when the snapshot was taken.
    pub analyzed_rows: u64,
    /// Per-column summaries, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStatistics {
    /// Estimated fraction of rows matching `col = <literal>`: the
    /// non-NULL fraction spread evenly over the distinct values (the
    /// uniform-distribution assumption every System R descendant makes).
    /// An unanalyzed or empty table estimates 1.0 — the planner's clamp
    /// to live rows keeps that harmless.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        let Some(c) = self.columns.get(col) else { return 1.0 };
        if self.analyzed_rows == 0 || c.distinct == 0 {
            // Empty at analyze time, or every entry NULL: no equality can
            // match a non-NULL literal, but stay conservative rather than
            // estimating zero for a possibly-drifted snapshot.
            return 1.0;
        }
        let non_null = (self.analyzed_rows - c.nulls.min(self.analyzed_rows)) as f64;
        (non_null / self.analyzed_rows as f64 / c.distinct as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows a range predicate on `col` keeps.
    /// Without histograms this is the classic fixed fraction, reduced by
    /// the NULL share (ranges never match NULL).
    pub fn range_selectivity(&self, col: usize) -> f64 {
        const RANGE_FRACTION: f64 = 1.0 / 3.0;
        let Some(c) = self.columns.get(col) else { return RANGE_FRACTION };
        if self.analyzed_rows == 0 {
            return RANGE_FRACTION;
        }
        let non_null = (self.analyzed_rows - c.nulls.min(self.analyzed_rows)) as f64
            / self.analyzed_rows as f64;
        RANGE_FRACTION * non_null
    }
}

/// Total order over `Value` by [`Value::index_cmp`], so distinct counting
/// can use a `BTreeSet` without requiring `Hash`/`Eq` (floats).
struct OrdValue<'a>(&'a Value);

impl PartialEq for OrdValue<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.0.index_cmp(other.0) == Ordering::Equal
    }
}

impl Eq for OrdValue<'_> {}

impl PartialOrd for OrdValue<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.index_cmp(other.0)
    }
}

/// Compute statistics over an iterator of rows (live latest images).
pub(crate) fn analyze_rows<'a>(
    arity: usize,
    rows: impl Iterator<Item = &'a crate::row::Row>,
) -> TableStatistics {
    let mut analyzed_rows = 0u64;
    let mut nulls = vec![0u64; arity];
    let mut distinct: Vec<BTreeSet<OrdValue<'a>>> = (0..arity).map(|_| BTreeSet::new()).collect();
    for row in rows {
        analyzed_rows += 1;
        for (i, v) in row.iter().enumerate().take(arity) {
            if v.is_null() {
                nulls[i] += 1;
            } else {
                distinct[i].insert(OrdValue(v));
            }
        }
    }
    TableStatistics {
        analyzed_rows,
        columns: distinct
            .into_iter()
            .zip(nulls)
            .map(|(d, n)| ColumnStats { distinct: d.len() as u64, nulls: n })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[Vec<Value>]) -> Vec<crate::row::Row> {
        data.to_vec()
    }

    #[test]
    fn analyze_counts_distinct_and_nulls() {
        let data = rows(&[
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(1), Value::from("a")],
            vec![Value::Int(2), Value::from("a")],
        ]);
        let s = analyze_rows(2, data.iter());
        assert_eq!(s.analyzed_rows, 3);
        assert_eq!(s.columns[0], ColumnStats { distinct: 2, nulls: 0 });
        assert_eq!(s.columns[1], ColumnStats { distinct: 1, nulls: 1 });
    }

    #[test]
    fn selectivity_empty_table_is_safe() {
        let s = analyze_rows(2, std::iter::empty());
        assert_eq!(s.analyzed_rows, 0);
        assert_eq!(s.eq_selectivity(0), 1.0);
        assert!(s.range_selectivity(0) > 0.0);
    }

    #[test]
    fn selectivity_all_duplicates_is_one() {
        let data = rows(&[vec![Value::Int(7)], vec![Value::Int(7)], vec![Value::Int(7)]]);
        let s = analyze_rows(1, data.iter());
        assert_eq!(s.columns[0].distinct, 1);
        assert_eq!(s.eq_selectivity(0), 1.0);
    }

    #[test]
    fn selectivity_null_heavy_column() {
        // 4 rows: 3 NULL, 1 real value — eq matches at most the non-NULL
        // quarter, and ranges scale down by the same share.
        let data = rows(&[
            vec![Value::Null],
            vec![Value::Null],
            vec![Value::Null],
            vec![Value::Int(1)],
        ]);
        let s = analyze_rows(1, data.iter());
        assert_eq!(s.columns[0], ColumnStats { distinct: 1, nulls: 3 });
        assert_eq!(s.eq_selectivity(0), 0.25);
        assert!(s.range_selectivity(0) < s.range_selectivity(99));
    }

    #[test]
    fn float_values_are_distinct_countable() {
        let data = rows(&[
            vec![Value::Float(0.5)],
            vec![Value::Float(0.5)],
            vec![Value::Float(1.5)],
            vec![Value::Float(f64::NAN)],
            vec![Value::Float(f64::NAN)],
        ]);
        let s = analyze_rows(1, data.iter());
        // NaN folds to one distinct value under index_cmp's total order.
        assert_eq!(s.columns[0].distinct, 3);
    }
}
