//! MVCC visibility machinery: the snapshot-epoch watermark and pin
//! registry.
//!
//! Commit epochs are allocated at the log-position-fix points in
//! [`crate::group_commit`] (or locally for non-durable databases). A
//! committed epoch becomes *visible* only once every smaller epoch has
//! also been published — epochs can be stamped out of allocation order by
//! concurrent committers, and a reader that pinned snapshot `S` must see
//! the effects of **every** epoch `<= S`, so the watermark advances
//! gap-free. Readers pin the current watermark; the background vacuum
//! reclaims row versions no pinned snapshot can still reach.
//!
//! The snapshot contract (what a pinned epoch does and does not promise)
//! is specified in DESIGN.md §7.5.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Per-database MVCC state: the visibility watermark and the set of
/// pinned snapshot epochs.
#[derive(Debug, Default)]
pub struct MvccState {
    /// Largest epoch `V` such that every epoch `<= V` has been published.
    /// Readers pin this value; a load is the whole snapshot-begin cost.
    visible: AtomicU64,
    /// Published epochs waiting for their predecessors (min-heap).
    published: Mutex<BinaryHeap<Reverse<u64>>>,
    /// Pinned snapshot epochs with pin counts — the vacuum horizon is the
    /// smallest key. Small (bounded by concurrent readers), so a BTreeMap
    /// beats anything fancier.
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl MvccState {
    fn published_lock(&self) -> std::sync::MutexGuard<'_, BinaryHeap<Reverse<u64>>> {
        self.published.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn pins_lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, usize>> {
        self.pins.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current snapshot watermark.
    pub fn visible(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }

    /// Publish epoch `e`: all of its row stamps are in place, so it may
    /// become visible. The watermark advances only when the published set
    /// is contiguous, so every allocated epoch must eventually be
    /// published — including failed or empty ones — or the watermark (and
    /// with it every new snapshot) stalls.
    pub fn publish(&self, e: u64) {
        let mut heap = self.published_lock();
        heap.push(Reverse(e));
        let mut visible = self.visible.load(Ordering::Relaxed);
        while heap.peek().is_some_and(|Reverse(top)| *top <= visible + 1) {
            let Reverse(top) = heap.pop().expect("peeked");
            visible = visible.max(top);
        }
        // Store under the heap lock: publishers serialize here, so the
        // watermark never moves backwards.
        self.visible.store(visible, Ordering::Release);
    }

    /// Register a pin at the current watermark, returning the pinned
    /// epoch. Pair with [`MvccState::unpin`].
    pub fn pin(&self) -> u64 {
        let mut pins = self.pins_lock();
        let e = self.visible();
        *pins.entry(e).or_insert(0) += 1;
        e
    }

    /// Drop one pin at epoch `e`.
    pub fn unpin(&self, e: u64) {
        let mut pins = self.pins_lock();
        if let Some(n) = pins.get_mut(&e) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&e);
            }
        }
    }

    /// The vacuum horizon: the oldest pinned snapshot, or the watermark
    /// when nothing is pinned. A version whose committed end epoch is
    /// `<= horizon` is invisible to every current and future snapshot.
    pub fn horizon(&self) -> u64 {
        let pins = self.pins_lock();
        pins.keys().next().copied().unwrap_or_else(|| self.visible())
    }

    /// Number of currently pinned snapshots (test/stats hook).
    pub fn pinned(&self) -> usize {
        self.pins_lock().values().sum()
    }
}

/// A pinned snapshot epoch; unpins on drop. Holding one keeps the vacuum
/// horizon at or below [`SnapshotPin::epoch`], so every row version that
/// snapshot can reach stays reclaimable-free until the pin drops.
#[derive(Debug)]
pub struct SnapshotPin {
    state: Arc<MvccState>,
    epoch: u64,
}

impl SnapshotPin {
    pub(crate) fn new(state: Arc<MvccState>) -> SnapshotPin {
        let epoch = state.pin();
        SnapshotPin { state, epoch }
    }

    /// The pinned snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        self.state.unpin(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_advances_only_contiguously() {
        let s = MvccState::default();
        assert_eq!(s.visible(), 0);
        s.publish(2);
        assert_eq!(s.visible(), 0, "epoch 1 missing: 2 must wait");
        s.publish(1);
        assert_eq!(s.visible(), 2, "gap filled: both become visible");
        s.publish(4);
        s.publish(5);
        assert_eq!(s.visible(), 2);
        s.publish(3);
        assert_eq!(s.visible(), 5);
    }

    #[test]
    fn pins_hold_the_horizon() {
        let state = Arc::new(MvccState::default());
        s_publish(&state, 1..=3);
        let pin = SnapshotPin::new(Arc::clone(&state));
        assert_eq!(pin.epoch(), 3);
        s_publish(&state, 4..=6);
        assert_eq!(state.visible(), 6);
        assert_eq!(state.horizon(), 3, "pinned snapshot holds the horizon");
        drop(pin);
        assert_eq!(state.horizon(), 6);
        assert_eq!(state.pinned(), 0);
    }

    fn s_publish(s: &MvccState, r: std::ops::RangeInclusive<u64>) {
        for e in r {
            s.publish(e);
        }
    }

    #[test]
    fn overlapping_pins() {
        let state = Arc::new(MvccState::default());
        state.publish(1);
        let a = SnapshotPin::new(Arc::clone(&state));
        state.publish(2);
        let b = SnapshotPin::new(Arc::clone(&state));
        assert_eq!((a.epoch(), b.epoch()), (1, 2));
        assert_eq!(state.horizon(), 1);
        drop(a);
        assert_eq!(state.horizon(), 2);
        drop(b);
    }
}
