//! Property test for the commit-epoch contract (DESIGN.md §7.2): under
//! seeded random interleavings of commits (each with a randomly chosen
//! per-commit durability), autocommit statements, `sync_now` barriers and
//! `checkpoint()`s,
//!
//! * `commit_epoch` is strictly increasing — every logged unit gets a
//!   fresh epoch, in order;
//! * `durable_epoch` never exceeds `commit_epoch` (nothing can be durable
//!   before it is acknowledged) and never regresses, in particular not
//!   across a checkpoint, which truncates the log but *raises* the
//!   watermark (the snapshot pays all outstanding durability debt).
//!
//! The driver is single-threaded so a seed replays the exact interleaving;
//! concurrency is exercised by the `_stress` tests. Deliberately
//! hand-rolled xorshift PRNG: the property must not depend on a test-only
//! dependency being present. Reproduce a failure with
//! `RELSTORE_EPOCH_SEED=<seed> cargo test -p relstore epoch_monotonicity`.

use std::time::Duration;

use relstore::{Access, Database, Durability, SyncPolicy, Value};

/// xorshift64 — deterministic, seedable, no dependencies. Seed must be
/// non-zero (0 is mapped to a fixed constant).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "relstore-epoch-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn check_case(seed: u64) {
    eprintln!("epoch_monotonicity: seed = {seed}");
    let mut rng = Rng::new(seed);
    let dir = tmpdir(&format!("{seed}"));
    let db = Database::open_durable_with(
        &dir,
        SyncPolicy::OsBuffered,
        Durability::Group { max_wait: Duration::from_millis(1), max_batch: 16 },
    )
    .unwrap();
    db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();

    let mut last_commit = db.commit_epoch();
    let mut last_durable = db.durable_epoch();
    let mut committed = 0i64;

    for step in 0..200 {
        match rng.below(10) {
            // 0–5: a transaction under a random per-commit durability
            0..=5 => {
                let mode = match rng.below(3) {
                    0 => Durability::Always,
                    1 => Durability::Group {
                        max_wait: Duration::from_millis(1),
                        max_batch: 16,
                    },
                    _ => Durability::Async {
                        max_wait: Duration::from_millis(1),
                        max_batch: 16,
                    },
                };
                db.with_durability(mode, || {
                    db.transaction(&[("t", Access::Write)], |s| {
                        s.execute(&format!("INSERT INTO t (v) VALUES ({step})"), &[])?;
                        Ok::<_, relstore::Error>(())
                    })
                })
                .unwrap();
                committed += 1;
                let e = Database::last_commit_epoch();
                assert!(
                    e > last_commit,
                    "seed {seed} step {step}: commit epoch not strictly increasing \
                     ({e} after {last_commit})"
                );
                last_commit = e;
            }
            // 6: an autocommit statement — also a logged unit, also epoch'd
            6 => {
                db.execute(&format!("INSERT INTO t (v) VALUES ({step})"), &[]).unwrap();
                committed += 1;
                let e = Database::last_commit_epoch();
                assert!(
                    e > last_commit,
                    "seed {seed} step {step}: autocommit epoch not strictly increasing"
                );
                last_commit = e;
            }
            // 7: hard barrier
            7 => {
                db.sync_now().unwrap();
                assert_eq!(
                    db.durable_epoch(),
                    db.commit_epoch(),
                    "seed {seed} step {step}: sync_now left acknowledged epochs non-durable"
                );
            }
            // 8: checkpoint — truncates the log, must not regress the
            // watermark (it raises it: the snapshot covers everything)
            8 => {
                let before = db.durable_epoch();
                db.checkpoint().unwrap();
                assert!(
                    db.durable_epoch() >= before,
                    "seed {seed} step {step}: durable epoch regressed across checkpoint"
                );
                assert_eq!(db.wal_stats().acked_not_durable_count(), 0);
            }
            // 9: wait for the newest acked epoch (must not hang or err)
            _ => {
                let e = db.commit_epoch();
                db.wait_for_epoch(e).unwrap();
            }
        }
        let (c, d) = (db.commit_epoch(), db.durable_epoch());
        assert!(
            d <= c,
            "seed {seed} step {step}: durable epoch {d} overtook commit epoch {c}"
        );
        assert!(
            d >= last_durable,
            "seed {seed} step {step}: durable epoch regressed {last_durable} -> {d}"
        );
        assert!(c >= last_commit, "seed {seed} step {step}: commit epoch regressed");
        last_durable = d;
    }

    // the acked state must actually be recoverable
    db.sync_now().unwrap();
    drop(db);
    let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t", &[]).unwrap().rows[0][0],
        Value::Int(committed),
        "seed {seed}: recovery lost rows the epoch contract promised"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Random interleavings under several fixed seeds (or one from
/// `RELSTORE_EPOCH_SEED`, for replaying a CI failure).
#[test]
fn epoch_monotonicity_under_random_interleavings() {
    if let Some(seed) = std::env::var("RELSTORE_EPOCH_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        check_case(seed);
        return;
    }
    for seed in [42, 0xDEAD_BEEF, 0x9E37_79B9_7F4A_7C15, 7, 1_000_003] {
        check_case(seed);
    }
}
