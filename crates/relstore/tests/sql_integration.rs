//! SQL-level integration tests: multi-statement scenarios against the
//! engine, exercising the planner, joins, expressions, and edge cases
//! beyond the per-module unit tests.

use std::sync::Arc;

use relstore::{Database, Error, Value};

fn db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE files (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            name VARCHAR(255) NOT NULL,
            coll INTEGER,
            size INTEGER,
            kind VARCHAR(16) DEFAULT 'data',
            added DATE
        );
        CREATE UNIQUE INDEX f_name ON files (name);
        CREATE INDEX f_coll ON files (coll);
        CREATE TABLE colls (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            name VARCHAR(255) NOT NULL UNIQUE
        );",
    )
    .unwrap();
    db.execute("INSERT INTO colls (name) VALUES ('run1'), ('run2')", &[]).unwrap();
    db.execute(
        "INSERT INTO files (name, coll, size, added) VALUES
            ('a', 1, 10, DATE '2003-01-01'),
            ('b', 1, 20, DATE '2003-02-01'),
            ('c', 2, 30, DATE '2003-03-01'),
            ('d', 2, NULL, NULL),
            ('e', NULL, 50, DATE '2003-05-01')",
        &[],
    )
    .unwrap();
    db
}

#[test]
fn where_with_and_or_parentheses() {
    let db = db();
    let rs = db
        .query(
            "SELECT name FROM files WHERE (coll = 1 AND size > 15) OR size >= 50 ORDER BY name",
            &[],
        )
        .unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["b", "e"]);
}

#[test]
fn null_semantics_in_where() {
    let db = db();
    // NULL size never matches a comparison...
    let rs = db.query("SELECT COUNT(*) FROM files WHERE size > 0", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(4));
    let rs = db.query("SELECT COUNT(*) FROM files WHERE NOT size > 0", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(0));
    // ...only IS NULL sees it
    let rs = db.query("SELECT name FROM files WHERE size IS NULL", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::from("d"));
    let rs = db.query("SELECT COUNT(*) FROM files WHERE size IS NOT NULL", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(4));
}

#[test]
fn join_groups_files_with_collections() {
    let db = db();
    let rs = db
        .query(
            "SELECT c.name, f.name FROM colls c JOIN files f ON c.id = f.coll \
             ORDER BY c.name, f.name",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 4); // d has a coll, e does not
    assert_eq!(rs.rows[0], vec![Value::from("run1"), Value::from("a")]);
    assert_eq!(rs.rows[3], vec![Value::from("run2"), Value::from("d")]);
}

#[test]
fn date_comparisons_and_between() {
    let db = db();
    let rs = db
        .query(
            "SELECT name FROM files WHERE added BETWEEN DATE '2003-01-15' AND DATE '2003-03-15' \
             ORDER BY name",
            &[],
        )
        .unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["b", "c"]);
}

#[test]
fn like_and_in_predicates() {
    let db = db();
    db.execute("INSERT INTO files (name) VALUES ('run_H1_0042.gwf')", &[]).unwrap();
    let rs = db.query("SELECT name FROM files WHERE name LIKE 'run!_%'", &[]).unwrap();
    assert!(rs.rows.is_empty()); // `!` is literal, no escape syntax
    let rs = db.query("SELECT name FROM files WHERE name LIKE 'run_H1%'", &[]).unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs = db
        .query("SELECT COUNT(*) FROM files WHERE name IN ('a', 'c', 'zz')", &[])
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(2));
}

#[test]
fn update_with_index_maintenance_via_sql() {
    let db = db();
    db.execute("UPDATE files SET coll = 2 WHERE name = 'a'", &[]).unwrap();
    let rs = db.query("SELECT COUNT(*) FROM files WHERE coll = 2", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(3));
    // the moved row is findable through the coll index (same results as a
    // fresh scan — verified by dropping the index)
    db.execute("DROP INDEX f_coll ON files", &[]).unwrap();
    let rs2 = db.query("SELECT COUNT(*) FROM files WHERE coll = 2", &[]).unwrap();
    assert_eq!(rs.rows, rs2.rows);
}

#[test]
fn delete_then_reinsert_same_unique_key() {
    let db = db();
    db.execute("DELETE FROM files WHERE name = 'a'", &[]).unwrap();
    db.execute("INSERT INTO files (name) VALUES ('a')", &[]).unwrap();
    let rs = db.query("SELECT kind FROM files WHERE name = 'a'", &[]).unwrap();
    assert_eq!(rs.rows[0][0], Value::from("data")); // default applied
}

#[test]
fn aggregate_edge_cases() {
    let db = db();
    // aggregates over an empty match set
    let rs = db
        .query("SELECT COUNT(*), MIN(size), MAX(size) FROM files WHERE size > 999", &[])
        .unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(0), Value::Null, Value::Null]);
    // MIN/MAX skip NULLs
    let rs = db.query("SELECT MIN(size), MAX(size) FROM files", &[]).unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(10), Value::Int(50)]);
}

#[test]
fn order_by_nulls_first_and_multi_key() {
    let db = db();
    let rs = db.query("SELECT name FROM files ORDER BY size, name", &[]).unwrap();
    // NULL sorts first under index ordering
    assert_eq!(rs.rows[0][0], Value::from("d"));
    let rs = db
        .query("SELECT name FROM files ORDER BY coll DESC, size DESC", &[])
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::from("c")); // coll 2, size 30 beats NULL size
}

#[test]
fn type_errors_are_reported_not_panicked() {
    let db = db();
    assert!(matches!(
        db.execute("INSERT INTO files (name, size) VALUES ('x', 'not-a-number')", &[]),
        Err(Error::TypeMismatch { .. })
    ));
    assert!(db.query("SELECT * FROM files WHERE size > 'abc'", &[]).is_err());
    assert!(matches!(
        db.query("SELECT nope FROM files", &[]),
        Err(Error::NoSuchColumn(_))
    ));
}

#[test]
fn three_way_join() {
    let db = db();
    db.execute_script(
        "CREATE TABLE tags (id INTEGER PRIMARY KEY AUTO_INCREMENT,
                            file_id INTEGER NOT NULL, tag VARCHAR(32) NOT NULL);
         CREATE INDEX t_file ON tags (file_id);",
    )
    .unwrap();
    db.execute(
        "INSERT INTO tags (file_id, tag) VALUES (1, 'hot'), (2, 'hot'), (3, 'cold')",
        &[],
    )
    .unwrap();
    let rs = db
        .query(
            "SELECT c.name, f.name, t.tag FROM colls c \
             JOIN files f ON c.id = f.coll \
             JOIN tags t ON t.file_id = f.id \
             WHERE t.tag = 'hot' ORDER BY f.name",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], Value::from("a"));
    assert_eq!(rs.rows[1][1], Value::from("b"));
}

#[test]
fn limit_offset_beyond_end() {
    let db = db();
    let rs = db.query("SELECT name FROM files ORDER BY name LIMIT 3 OFFSET 4", &[]).unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs = db.query("SELECT name FROM files LIMIT 0", &[]).unwrap();
    assert!(rs.rows.is_empty());
    let rs = db.query("SELECT name FROM files OFFSET 99", &[]).unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn concurrent_readers_during_writes() {
    let db = db();
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let rs = db.query("SELECT COUNT(*) FROM files WHERE coll = 1", &[]).unwrap();
                    let n = rs.rows[0][0].as_int().unwrap();
                    assert!(n >= 1, "collection 1 never drops below 1 row");
                }
            })
        })
        .collect();
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for i in 0..100 {
                db.execute(
                    "INSERT INTO files (name, coll) VALUES (?, 1)",
                    &[format!("w{i}").into()],
                )
                .unwrap();
                db.execute("DELETE FROM files WHERE name = ?", &[format!("w{i}").into()])
                    .unwrap();
            }
        })
    };
    for r in readers {
        r.join().unwrap();
    }
    writer.join().unwrap();
    let t = db.table("files").unwrap();
    t.read().check_integrity().unwrap();
}
