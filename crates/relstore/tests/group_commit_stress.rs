//! Concurrency stress for the group-commit queue: many writers hammering
//! `Database::transaction` under `Durability::Group` must (a) never let a
//! concurrent reader observe a half-committed transaction, (b) amortize
//! fsyncs well below one per transaction, and (c) leave a WAL that
//! recovers every committed row.
//!
//! Test names carry the `_stress` suffix so `scripts/verify.sh` can run
//! them as their own CI lane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relstore::{Access, Database, Durability, SyncPolicy, Value};

const WRITERS: usize = 8;
const TXNS_PER_WRITER: usize = 200;
const ROWS_PER_TXN: i64 = 2;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "relstore-gcs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn count(db: &Database, table: &str) -> i64 {
    match db.query(&format!("SELECT COUNT(*) FROM {table}"), &[]).unwrap().rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("COUNT(*) returned {v:?}"),
    }
}

/// 8 writers × 200 transactions, each transaction inserting two rows into
/// the writer's own table, with concurrent readers polling row counts.
/// A transaction is the only writer of its table and commits before its
/// barrier drops, so every observed count must be a multiple of the
/// per-transaction row count — an odd count is a torn commit leaking.
#[test]
fn eight_writers_two_hundred_txns_share_fsyncs_stress() {
    let dir = tmpdir("8x200");
    let total_txns = (WRITERS * TXNS_PER_WRITER) as u64;
    {
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Group { max_wait: Duration::from_millis(2), max_batch: 64 },
        )
        .unwrap();
        for w in 0..WRITERS {
            db.execute(&format!("CREATE TABLE w{w} (v INTEGER)"), &[]).unwrap();
        }
        let syncs0 = db.wal_stats().sync_count();
        let groups0 = db.wal_stats().group_commit_count();

        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let db = Arc::clone(&db);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut observations = 0u64;
                    while !done.load(Ordering::Acquire) {
                        for w in 0..WRITERS {
                            let n = count(&db, &format!("w{w}"));
                            assert_eq!(
                                n % ROWS_PER_TXN,
                                0,
                                "reader saw a half-committed transaction: w{w} has {n} rows"
                            );
                            observations += 1;
                        }
                    }
                    observations
                })
            })
            .collect();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let table = format!("w{w}");
                    for t in 0..TXNS_PER_WRITER {
                        db.transaction(&[(table.as_str(), Access::Write)], |s| {
                            for r in 0..ROWS_PER_TXN {
                                let v = (t as i64) * ROWS_PER_TXN + r;
                                s.execute(&format!("INSERT INTO w{w} (v) VALUES ({v})"), &[])?;
                            }
                            Ok::<_, relstore::Error>(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in readers {
            let obs = h.join().unwrap();
            assert!(obs > 0, "reader thread never got to observe anything");
        }

        let syncs = db.wal_stats().sync_count() - syncs0;
        let groups = db.wal_stats().group_commit_count() - groups0;
        assert_eq!(groups, total_txns, "every transaction must reach the WAL exactly once");
        assert!(
            syncs * 4 <= total_txns,
            "group commit must amortize fsyncs at least 4x: {syncs} syncs for {total_txns} txns"
        );
        println!("group-commit stress: {total_txns} txns, {syncs} fsyncs");
    } // crash with everything committed

    let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
    for w in 0..WRITERS {
        assert_eq!(
            count(&db, &format!("w{w}")),
            (TXNS_PER_WRITER as i64) * ROWS_PER_TXN,
            "recovery lost committed transactions in w{w}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Writers contending on a SINGLE table serialize through its barrier, so
/// their groups flow through the queue one at a time — the degenerate
/// case group commit must not corrupt or deadlock.
#[test]
fn contended_single_table_writers_stress() {
    let dir = tmpdir("contended");
    {
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Group { max_wait: Duration::from_millis(1), max_batch: 16 },
        )
        .unwrap();
        db.execute("CREATE TABLE shared (v INTEGER)", &[]).unwrap();
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for t in 0..50 {
                        db.transaction(&[("shared", Access::Write)], |s| {
                            let v = (w as i64) * 1000 + t;
                            s.execute(&format!("INSERT INTO shared (v) VALUES ({v})"), &[])?;
                            s.execute(
                                &format!("INSERT INTO shared (v) VALUES ({})", v + 500),
                                &[],
                            )?;
                            Ok::<_, relstore::Error>(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        assert_eq!(count(&db, "shared"), 400);
    }
    let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
    assert_eq!(count(&db, "shared"), 400, "recovery lost committed rows");
    std::fs::remove_dir_all(&dir).ok();
}
