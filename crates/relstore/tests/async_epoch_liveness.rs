//! Liveness stress for `Durability::Async` epoch acknowledgement: many
//! writers committing with immediate acks while chaser threads park on
//! `wait_for_epoch` for the freshest epoch they can see. The property
//! under test is *liveness* — no waiter may deadlock, whatever
//! interleaving of flusher batches, direct appends, and `sync_now`
//! barriers the scheduler produces — plus the recovery-side guarantee
//! that everything a final `sync_now` covered survives a crash.
//!
//! Test names carry the `_stress` suffix so `scripts/verify.sh` can run
//! them in the stress and async-durability CI lanes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relstore::{Access, Database, Durability, SyncPolicy, Value};

const WRITERS: usize = 8;
const TXNS_PER_WRITER: usize = 200;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "relstore-ael-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn count(db: &Database, table: &str) -> i64 {
    match db.query(&format!("SELECT COUNT(*) FROM {table}"), &[]).unwrap().rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("COUNT(*) returned {v:?}"),
    }
}

/// 8 writers × 200 async transactions; each writer publishes its latest
/// acked epoch to a shared cell, and two chaser threads repeatedly call
/// `wait_for_epoch` on the freshest published epoch. Every wait must
/// return `Ok` (the writer is healthy) and the whole run must finish —
/// the test hanging *is* the failure mode being hunted. A final
/// `sync_now` barrier must leave zero acknowledgement debt, and reopening
/// must recover every transaction it covered.
#[test]
fn wait_for_epoch_never_deadlocks_stress() {
    let dir = tmpdir("chase");
    {
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Async { max_wait: Duration::from_millis(2), max_batch: 64 },
        )
        .unwrap();
        for w in 0..WRITERS {
            db.execute(&format!("CREATE TABLE w{w} (v INTEGER)"), &[]).unwrap();
        }
        let freshest = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));

        let chasers: Vec<_> = (0..2)
            .map(|_| {
                let db = Arc::clone(&db);
                let freshest = Arc::clone(&freshest);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut waits = 0u64;
                    while !done.load(Ordering::Acquire) {
                        let e = freshest.load(Ordering::Acquire);
                        if e == 0 {
                            std::thread::yield_now();
                            continue;
                        }
                        db.wait_for_epoch(e).unwrap_or_else(|err| {
                            panic!("wait_for_epoch({e}) failed on a healthy writer: {err}")
                        });
                        assert!(db.durable_epoch() >= e);
                        waits += 1;
                    }
                    waits
                })
            })
            .collect();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = Arc::clone(&db);
                let freshest = Arc::clone(&freshest);
                std::thread::spawn(move || {
                    let table = format!("w{w}");
                    for t in 0..TXNS_PER_WRITER {
                        db.transaction(&[(table.as_str(), Access::Write)], |s| {
                            s.execute(&format!("INSERT INTO w{w} (v) VALUES ({t})"), &[])?;
                            Ok::<_, relstore::Error>(())
                        })
                        .unwrap();
                        let e = Database::last_commit_epoch();
                        freshest.fetch_max(e, Ordering::AcqRel);
                        // occasionally turn the weak ack into a hard one
                        // mid-stream, so waits race live flusher batches
                        if t % 64 == 63 {
                            db.wait_for_epoch(e).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in chasers {
            let waits = h.join().unwrap();
            assert!(waits > 0, "chaser never completed a single wait");
        }

        db.sync_now().unwrap();
        assert_eq!(db.durable_epoch(), db.commit_epoch());
        assert_eq!(db.wal_stats().acked_not_durable_count(), 0);
        assert!(
            db.wal_stats().max_epoch_lag_seen() > 0,
            "async acks never ran ahead of durability — the mode was inert"
        );
    } // crash after the barrier: everything must be on disk

    let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
    for w in 0..WRITERS {
        assert_eq!(
            count(&db, &format!("w{w}")),
            TXNS_PER_WRITER as i64,
            "recovery lost async transactions covered by sync_now in w{w}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Async and Group writers interleave on the same database (per-commit
/// `with_durability` overrides) while a chaser waits on async epochs:
/// parked Group committers and parked epoch waiters share the queue's
/// condvar, and neither may starve the other.
#[test]
fn mixed_mode_writers_and_epoch_waiters_stress() {
    let dir = tmpdir("mixed");
    {
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Group { max_wait: Duration::from_millis(2), max_batch: 64 },
        )
        .unwrap();
        db.execute("CREATE TABLE shared (v INTEGER)", &[]).unwrap();
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let asynchronous =
                        Durability::Async { max_wait: Duration::from_millis(2), max_batch: 64 };
                    for t in 0..100 {
                        let v = (w as i64) * 1000 + t;
                        if (w + t as usize) % 2 == 0 {
                            // async commit, then immediately chase it
                            db.with_durability(asynchronous, || {
                                db.transaction(&[("shared", Access::Write)], |s| {
                                    s.execute(
                                        &format!("INSERT INTO shared (v) VALUES ({v})"),
                                        &[],
                                    )?;
                                    Ok::<_, relstore::Error>(())
                                })
                            })
                            .unwrap();
                            db.wait_for_epoch(Database::last_commit_epoch()).unwrap();
                        } else {
                            // group commit: parks until a leader syncs it
                            db.transaction(&[("shared", Access::Write)], |s| {
                                s.execute(&format!("INSERT INTO shared (v) VALUES ({v})"), &[])?;
                                Ok::<_, relstore::Error>(())
                            })
                            .unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        db.sync_now().unwrap();
        assert_eq!(count(&db, "shared"), 400);
        assert_eq!(db.wal_stats().acked_not_durable_count(), 0);
    }
    let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
    assert_eq!(count(&db, "shared"), 400, "recovery lost committed rows");
    std::fs::remove_dir_all(&dir).ok();
}
