//! Deterministic fuzz/property tests for the SQL front end.
//!
//! A seeded PRNG drives an AST generator over the full supported grammar;
//! each generated statement is rendered back to SQL text and re-parsed,
//! and the roundtripped AST must equal the original. A second battery
//! feeds malformed input to the parser and requires a clean `Err` —
//! never a panic — since SOAP clients hand the service arbitrary query
//! strings (paper §4: the service validates requests, it does not trust
//! them).

use relstore::sql::ast::{
    AggFunc, ColumnSpec, JoinClause, OrderKey, Select, SelectItem, Statement, TableRef,
};
use relstore::sql::parse;
use relstore::value::{Date, DateTime, Time};
use relstore::{CmpOp, Expr, Value, ValueType};

// ---------- seeded PRNG (SplitMix64: tiny, deterministic, no deps) ----------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

// ---------- AST generation ----------

/// Words the lexer or parser treats specially somewhere in the grammar —
/// generated identifiers must avoid all of them.
const KEYWORDS: &[&str] = &[
    "select", "from", "where", "and", "or", "not", "like", "in", "is", "null", "true", "false",
    "between", "order", "by", "limit", "offset", "join", "inner", "on", "as", "insert", "into",
    "values", "update", "set", "delete", "create", "table", "index", "drop", "unique", "primary",
    "key", "default", "date", "time", "timestamp", "datetime", "count", "min", "max", "int",
    "integer", "bigint", "smallint", "double", "float", "real", "varchar", "char", "text",
    "boolean", "bool", "begin", "commit", "rollback", "if", "exists", "asc", "desc", "group",
    "auto_increment", "autoincrement",
];

fn ident(r: &mut Rng) -> String {
    loop {
        let len = 1 + r.below(8) as usize;
        let mut s = String::new();
        for i in 0..len {
            let c = if i == 0 {
                b'a' + r.below(26) as u8
            } else {
                match r.below(37) {
                    0..=25 => b'a' + r.below(26) as u8,
                    26..=35 => b'0' + r.below(10) as u8,
                    _ => b'_',
                }
            };
            s.push(c as char);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

fn string_lit(r: &mut Rng) -> String {
    let len = r.below(12) as usize;
    let mut s = String::new();
    for _ in 0..len {
        s.push(match r.below(40) {
            0..=25 => (b'a' + r.below(26) as u8) as char,
            26..=33 => (b'0' + r.below(10) as u8) as char,
            34 | 35 => ' ',
            36 => '_',
            37 => '%',
            38 => '\'', // exercises the '' escape
            _ => '-',
        });
    }
    s
}

/// A literal value the renderer can print and the lexer will read back.
fn literal(r: &mut Rng, temporal: bool) -> Value {
    match r.below(if temporal { 8 } else { 5 }) {
        0 => Value::Int(r.below(10_000) as i64),
        // quarters are exact in binary, so text -> f64 -> text is lossless
        1 => Value::Float(r.below(4_000) as f64 / 4.0),
        2 => Value::from(string_lit(r)),
        3 => Value::Bool(r.chance(50)),
        4 => Value::Null,
        5 => Value::Date(Date::parse(&date_text(r)).unwrap()),
        6 => Value::Time(Time::parse(&time_text(r)).unwrap()),
        _ => {
            let s = format!("{} {}", date_text(r), time_text(r));
            Value::DateTime(DateTime::parse(&s).unwrap())
        }
    }
}

fn date_text(r: &mut Rng) -> String {
    format!("{:04}-{:02}-{:02}", 1990 + r.below(40), 1 + r.below(12), 1 + r.below(28))
}

fn time_text(r: &mut Rng) -> String {
    format!("{:02}:{:02}:{:02}", r.below(24), r.below(60), r.below(60))
}

/// Generated `Param` indices are placeholders; `renumber` assigns the
/// textual order the parser will reproduce.
fn expr(r: &mut Rng, depth: u32) -> Expr {
    let leaf = depth == 0;
    match r.below(if leaf { 3 } else { 10 }) {
        0 => Expr::Column {
            table: if r.chance(30) { Some(ident(r)) } else { None },
            column: ident(r),
        },
        1 => Expr::Literal(literal(r, true)),
        2 => Expr::Param(0),
        3 => {
            let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
                [r.below(6) as usize];
            Expr::Cmp(op, Box::new(expr(r, depth - 1)), Box::new(expr(r, depth - 1)))
        }
        4 => Expr::And(Box::new(expr(r, depth - 1)), Box::new(expr(r, depth - 1))),
        5 => Expr::Or(Box::new(expr(r, depth - 1)), Box::new(expr(r, depth - 1))),
        6 => Expr::Not(Box::new(expr(r, depth - 1))),
        7 => Expr::Like(Box::new(expr(r, depth - 1)), Box::new(expr(r, depth - 1))),
        8 => Expr::IsNull { expr: Box::new(expr(r, depth - 1)), negated: r.chance(50) },
        _ => {
            let n = 1 + r.below(3);
            let list = (0..n).map(|_| expr(r, depth - 1)).collect();
            Expr::InList(Box::new(expr(r, depth - 1)), list)
        }
    }
}

fn column_spec(r: &mut Rng) -> ColumnSpec {
    let (ty, max_len) = match r.below(8) {
        0 | 1 => (ValueType::Int, None),
        2 => (ValueType::Float, None),
        3 | 4 => (ValueType::Str, Some(1 + r.below(300) as usize)),
        5 => (ValueType::Str, None), // TEXT
        6 => (ValueType::Bool, None),
        _ => (
            [ValueType::Date, ValueType::Time, ValueType::DateTime][r.below(3) as usize],
            None,
        ),
    };
    ColumnSpec {
        name: ident(r),
        ty,
        max_len,
        not_null: r.chance(30),
        primary_key: r.chance(10),
        unique: r.chance(15),
        auto_increment: ty == ValueType::Int && r.chance(15),
        // DEFAULT accepts plain literals only (no DATE '...' forms)
        default: if r.chance(25) { Some(literal(r, false)) } else { None },
    }
}

fn table_ref(r: &mut Rng) -> TableRef {
    TableRef { table: ident(r), alias: if r.chance(35) { Some(ident(r)) } else { None } }
}

fn select_item(r: &mut Rng) -> SelectItem {
    if r.chance(25) {
        let func = [AggFunc::Count, AggFunc::Min, AggFunc::Max][r.below(3) as usize];
        let column = if func == AggFunc::Count && r.chance(50) {
            None // COUNT(*)
        } else {
            Some((if r.chance(25) { Some(ident(r)) } else { None }, ident(r)))
        };
        SelectItem::Aggregate { func, column, alias: if r.chance(40) { Some(ident(r)) } else { None } }
    } else {
        SelectItem::Column {
            table: if r.chance(30) { Some(ident(r)) } else { None },
            column: ident(r),
            alias: if r.chance(25) { Some(ident(r)) } else { None },
        }
    }
}

fn statement(r: &mut Rng) -> Statement {
    match r.below(8) {
        0 => Statement::CreateTable {
            name: ident(r),
            columns: (0..1 + r.below(5)).map(|_| column_spec(r)).collect(),
            primary_key: if r.chance(25) {
                (0..1 + r.below(2)).map(|_| ident(r)).collect()
            } else {
                Vec::new()
            },
            if_not_exists: r.chance(30),
        },
        1 => Statement::CreateIndex {
            name: ident(r),
            table: ident(r),
            columns: (0..1 + r.below(3)).map(|_| ident(r)).collect(),
            unique: r.chance(40),
        },
        2 => Statement::DropTable { name: ident(r), if_exists: r.chance(40) },
        3 => Statement::DropIndex { name: ident(r), table: ident(r) },
        4 => {
            let width = 1 + r.below(4) as usize;
            Statement::Insert {
                table: ident(r),
                columns: if r.chance(70) {
                    (0..width).map(|_| ident(r)).collect()
                } else {
                    Vec::new()
                },
                rows: (0..1 + r.below(3))
                    .map(|_| {
                        (0..width)
                            .map(|_| {
                                if r.chance(25) {
                                    Expr::Param(0)
                                } else {
                                    Expr::Literal(literal(r, true))
                                }
                            })
                            .collect()
                    })
                    .collect(),
            }
        }
        5 => Statement::Select(Select {
            items: (0..1 + r.below(3)).map(|_| select_item(r)).collect(),
            from: table_ref(r),
            joins: (0..r.below(3))
                .map(|_| JoinClause { table: table_ref(r), on: expr(r, 2) })
                .collect(),
            where_clause: if r.chance(70) { Some(expr(r, 3)) } else { None },
            order_by: (0..r.below(3))
                .map(|_| OrderKey {
                    table: if r.chance(25) { Some(ident(r)) } else { None },
                    column: ident(r),
                    desc: r.chance(50),
                })
                .collect(),
            limit: if r.chance(40) { Some(r.below(1000) as usize) } else { None },
            offset: if r.chance(25) { Some(r.below(1000) as usize) } else { None },
        }),
        6 => Statement::Update {
            table: ident(r),
            sets: (0..1 + r.below(3)).map(|_| (ident(r), expr(r, 2))).collect(),
            where_clause: if r.chance(70) { Some(expr(r, 3)) } else { None },
        },
        _ => Statement::Delete {
            table: ident(r),
            where_clause: if r.chance(70) { Some(expr(r, 3)) } else { None },
        },
    }
}

// ---------- parameter renumbering (textual order, as the parser sees) ----------

fn renumber_expr(e: &mut Expr, next: &mut usize) {
    match e {
        Expr::Param(i) => {
            *i = *next;
            *next += 1;
        }
        Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Like(l, r) => {
            renumber_expr(l, next);
            renumber_expr(r, next);
        }
        Expr::Not(x) => renumber_expr(x, next),
        Expr::IsNull { expr, .. } => renumber_expr(expr, next),
        Expr::InList(head, list) => {
            renumber_expr(head, next);
            for x in list {
                renumber_expr(x, next);
            }
        }
        Expr::Column { .. } | Expr::Literal(_) => {}
    }
}

fn renumber(s: &mut Statement) {
    let mut n = 0usize;
    match s {
        Statement::Insert { rows, .. } => {
            for row in rows {
                for e in row {
                    renumber_expr(e, &mut n);
                }
            }
        }
        Statement::Select(sel) => {
            for j in &mut sel.joins {
                renumber_expr(&mut j.on, &mut n);
            }
            if let Some(w) = &mut sel.where_clause {
                renumber_expr(w, &mut n);
            }
        }
        Statement::Update { sets, where_clause, .. } => {
            for (_, e) in sets {
                renumber_expr(e, &mut n);
            }
            if let Some(w) = where_clause {
                renumber_expr(w, &mut n);
            }
        }
        Statement::Delete { where_clause, .. } => {
            if let Some(w) = where_clause {
                renumber_expr(w, &mut n);
            }
        }
        _ => {}
    }
}

// ---------- rendering (AST -> SQL text) ----------

/// Sub-expressions are parenthesized unconditionally: `operand()` accepts
/// a parenthesized full expression anywhere, so this renders every AST
/// shape unambiguously (precedence never re-associates the tree).
fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Column { table: Some(t), column } => format!("{t}.{column}"),
        Expr::Column { table: None, column } => column.clone(),
        Expr::Literal(v) => render_value(v),
        Expr::Param(_) => "?".into(),
        Expr::Cmp(op, l, r) => format!("({}) {} ({})", render_expr(l), op, render_expr(r)),
        Expr::And(l, r) => format!("({}) AND ({})", render_expr(l), render_expr(r)),
        Expr::Or(l, r) => format!("({}) OR ({})", render_expr(l), render_expr(r)),
        Expr::Not(x) => format!("NOT ({})", render_expr(x)),
        Expr::Like(l, r) => format!("({}) LIKE ({})", render_expr(l), render_expr(r)),
        Expr::IsNull { expr, negated: false } => format!("({}) IS NULL", render_expr(expr)),
        Expr::IsNull { expr, negated: true } => format!("({}) IS NOT NULL", render_expr(expr)),
        Expr::InList(head, list) => {
            let items: Vec<String> =
                list.iter().map(|x| format!("({})", render_expr(x))).collect();
            format!("({}) IN ({})", render_expr(head), items.join(", "))
        }
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(n) => n.to_string(),
        Value::Float(x) => format!("{x:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(true) => "TRUE".into(),
        Value::Bool(false) => "FALSE".into(),
        Value::Null => "NULL".into(),
        Value::Date(d) => format!("DATE '{d}'"),
        Value::Time(t) => format!("TIME '{t}'"),
        Value::DateTime(dt) => format!("TIMESTAMP '{dt}'"),
    }
}

fn render_type(c: &ColumnSpec) -> String {
    match c.ty {
        ValueType::Int => "INTEGER".into(),
        ValueType::Float => "DOUBLE".into(),
        ValueType::Str => match c.max_len {
            Some(n) => format!("VARCHAR({n})"),
            None => "TEXT".into(),
        },
        ValueType::Bool => "BOOLEAN".into(),
        ValueType::Date => "DATE".into(),
        ValueType::Time => "TIME".into(),
        ValueType::DateTime => "DATETIME".into(),
    }
}

fn render_column_spec(c: &ColumnSpec) -> String {
    let mut s = format!("{} {}", c.name, render_type(c));
    if c.not_null {
        s.push_str(" NOT NULL");
    }
    if c.primary_key {
        s.push_str(" PRIMARY KEY");
    }
    if c.unique {
        s.push_str(" UNIQUE");
    }
    if c.auto_increment {
        s.push_str(" AUTO_INCREMENT");
    }
    if let Some(d) = &c.default {
        s.push_str(&format!(" DEFAULT {}", render_value(d)));
    }
    s
}

fn render_table_ref(t: &TableRef) -> String {
    match &t.alias {
        Some(a) => format!("{} AS {}", t.table, a),
        None => t.table.clone(),
    }
}

fn render_select_item(i: &SelectItem) -> String {
    match i {
        SelectItem::Wildcard => "*".into(),
        SelectItem::Column { table, column, alias } => {
            let mut s = match table {
                Some(t) => format!("{t}.{column}"),
                None => column.clone(),
            };
            if let Some(a) = alias {
                s.push_str(&format!(" AS {a}"));
            }
            s
        }
        SelectItem::Aggregate { func, column, alias } => {
            let f = match func {
                AggFunc::Count => "COUNT",
                AggFunc::Min => "MIN",
                AggFunc::Max => "MAX",
            };
            let arg = match column {
                None => "*".into(),
                Some((Some(t), c)) => format!("{t}.{c}"),
                Some((None, c)) => c.clone(),
            };
            let mut s = format!("{f}({arg})");
            if let Some(a) = alias {
                s.push_str(&format!(" AS {a}"));
            }
            s
        }
    }
}

fn render(s: &Statement) -> String {
    match s {
        Statement::CreateTable { name, columns, primary_key, if_not_exists } => {
            let mut parts: Vec<String> = columns.iter().map(render_column_spec).collect();
            if !primary_key.is_empty() {
                parts.push(format!("PRIMARY KEY ({})", primary_key.join(", ")));
            }
            format!(
                "CREATE TABLE {}{} ({})",
                if *if_not_exists { "IF NOT EXISTS " } else { "" },
                name,
                parts.join(", ")
            )
        }
        Statement::CreateIndex { name, table, columns, unique } => format!(
            "CREATE {}INDEX {} ON {} ({})",
            if *unique { "UNIQUE " } else { "" },
            name,
            table,
            columns.join(", ")
        ),
        Statement::DropTable { name, if_exists } => {
            format!("DROP TABLE {}{}", if *if_exists { "IF EXISTS " } else { "" }, name)
        }
        Statement::DropIndex { name, table } => format!("DROP INDEX {name} ON {table}"),
        Statement::Insert { table, columns, rows } => {
            let cols = if columns.is_empty() {
                String::new()
            } else {
                format!(" ({})", columns.join(", "))
            };
            let vals: Vec<String> = rows
                .iter()
                .map(|row| {
                    let exprs: Vec<String> = row.iter().map(render_expr).collect();
                    format!("({})", exprs.join(", "))
                })
                .collect();
            format!("INSERT INTO {table}{cols} VALUES {}", vals.join(", "))
        }
        Statement::Select(sel) => {
            let items: Vec<String> = sel.items.iter().map(render_select_item).collect();
            let mut s = format!("SELECT {} FROM {}", items.join(", "), render_table_ref(&sel.from));
            for j in &sel.joins {
                s.push_str(&format!(
                    " JOIN {} ON {}",
                    render_table_ref(&j.table),
                    render_expr(&j.on)
                ));
            }
            if let Some(w) = &sel.where_clause {
                s.push_str(&format!(" WHERE {}", render_expr(w)));
            }
            if !sel.order_by.is_empty() {
                let keys: Vec<String> = sel
                    .order_by
                    .iter()
                    .map(|k| {
                        let col = match &k.table {
                            Some(t) => format!("{t}.{}", k.column),
                            None => k.column.clone(),
                        };
                        if k.desc {
                            format!("{col} DESC")
                        } else {
                            col
                        }
                    })
                    .collect();
                s.push_str(&format!(" ORDER BY {}", keys.join(", ")));
            }
            if let Some(n) = sel.limit {
                s.push_str(&format!(" LIMIT {n}"));
            }
            if let Some(n) = sel.offset {
                s.push_str(&format!(" OFFSET {n}"));
            }
            s
        }
        Statement::Update { table, sets, where_clause } => {
            let assigns: Vec<String> =
                sets.iter().map(|(c, e)| format!("{c} = {}", render_expr(e))).collect();
            let mut s = format!("UPDATE {table} SET {}", assigns.join(", "));
            if let Some(w) = where_clause {
                s.push_str(&format!(" WHERE {}", render_expr(w)));
            }
            s
        }
        Statement::Delete { table, where_clause } => {
            let mut s = format!("DELETE FROM {table}");
            if let Some(w) = where_clause {
                s.push_str(&format!(" WHERE {}", render_expr(w)));
            }
            s
        }
        Statement::Begin => "BEGIN".into(),
        Statement::Commit => "COMMIT".into(),
        Statement::Rollback => "ROLLBACK".into(),
    }
}

// ---------- the property: AST -> SQL -> AST is the identity ----------

#[test]
fn generated_statements_roundtrip_through_the_parser() {
    // Fixed seeds: failures reproduce exactly; print the seed + statement
    // index on mismatch so a regression is one `cargo test` away.
    for seed in [1u64, 0xdead_beef, 42, 0x5eed_5eed_5eed_5eed] {
        let mut rng = Rng(seed);
        for case in 0..500 {
            let mut want = statement(&mut rng);
            renumber(&mut want);
            let sql = render(&want);
            let got = parse(&sql).unwrap_or_else(|e| {
                panic!("seed {seed:#x} case {case}: render produced unparsable SQL\n  sql: {sql}\n  err: {e}")
            });
            assert_eq!(
                got, want,
                "seed {seed:#x} case {case}: roundtrip changed the AST\n  sql: {sql}"
            );
        }
    }
}

#[test]
fn control_statements_roundtrip() {
    for (sql, want) in [
        ("BEGIN", Statement::Begin),
        ("COMMIT", Statement::Commit),
        ("ROLLBACK", Statement::Rollback),
    ] {
        assert_eq!(parse(sql).unwrap(), want);
        assert_eq!(parse(&render(&want)).unwrap(), want);
    }
}

// ---------- malformed input must error, never panic ----------

#[test]
fn malformed_input_returns_errors_not_panics() {
    let cases: &[&str] = &[
        "",
        "   \t\n  ",
        "SELECT",
        "SELECT FROM",
        "SELECT * FROM",
        "SELECT *, FROM t",
        "SELECT COUNT( FROM t",
        "SELECT MIN(*) FROM t",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t WHERE a =",
        "SELECT * FROM t WHERE a NOT 5",
        "SELECT * FROM t WHERE a BETWEEN 1",
        "SELECT * FROM t WHERE a IN",
        "SELECT * FROM t WHERE a IN ()",
        "SELECT * FROM t WHERE (a = 1",
        "SELECT * FROM t WHERE a = 1)",
        "SELECT * FROM t JOIN",
        "SELECT * FROM t JOIN u",
        "SELECT * FROM t ORDER",
        "SELECT * FROM t ORDER BY",
        "SELECT * FROM t LIMIT",
        "SELECT * FROM t LIMIT abc",
        "CREATE",
        "CREATE TABLE",
        "CREATE TABLE t",
        "CREATE TABLE t (",
        "CREATE TABLE t ()",
        "CREATE TABLE t (c)",
        "CREATE TABLE t (c FROBNITZ)",
        "CREATE TABLE t (c VARCHAR())",
        "CREATE TABLE t (c VARCHAR(0))",
        "CREATE TABLE t (c INTEGER DEFAULT)",
        "CREATE TABLE t (PRIMARY KEY)",
        "CREATE INDEX i",
        "CREATE INDEX i ON t",
        "CREATE INDEX i ON t ()",
        "CREATE UNIQUE",
        "DROP",
        "DROP TABLE",
        "DROP INDEX i",
        "INSERT",
        "INSERT INTO",
        "INSERT INTO t",
        "INSERT INTO t VALUES",
        "INSERT INTO t VALUES (",
        "INSERT INTO t VALUES ()",
        "INSERT INTO t (a,) VALUES (1)",
        "UPDATE",
        "UPDATE t",
        "UPDATE t SET",
        "UPDATE t SET a",
        "UPDATE t SET a = ",
        "DELETE",
        "DELETE t",
        "DELETE FROM",
        "'unterminated string",
        "SELECT * FROM t WHERE s = 'oops",
        "SELECT * FROM t WHERE d = DATE 'not-a-date'",
        "SELECT * FROM t WHERE d = DATE '2003-13-45'",
        "SELECT * FROM t WHERE ts = TIMESTAMP '2003-01-01'",
        "@#$%^&",
        "SELECT * FROM t; DROP TABLE t", // no multi-statement smuggling
        "\u{0000}SELECT * FROM t",
        "SELECT * FROM t WHERE a = 🚀",
    ];
    for sql in cases {
        let r = parse(sql);
        let err = r.expect_err(&format!("parser accepted malformed input: {sql:?}"));
        assert!(!err.to_string().is_empty(), "empty error message for {sql:?}");
    }
    // Nesting beyond the parser's depth limit must be an error, not a
    // stack overflow — found by this harness, fixed with MAX_EXPR_DEPTH.
    let deep = format!("SELECT * FROM t WHERE {}a = 1{}", "(".repeat(5_000), ")".repeat(5_000));
    parse(&deep).expect_err("depth limit must reject pathological nesting");
    let unbalanced = format!("SELECT * FROM t WHERE {}a = 1", "(".repeat(5_000));
    parse(&unbalanced).expect_err("unbalanced parens must error");
    let not_bomb = format!("SELECT * FROM t WHERE {}a = 1", "NOT ".repeat(5_000));
    parse(&not_bomb).expect_err("depth limit must reject pathological NOT chains");
    // ...while reasonable nesting still parses
    let ok = format!("SELECT * FROM t WHERE {}a = 1{}", "(".repeat(30), ")".repeat(30));
    parse(&ok).expect("moderate nesting must still parse");
}
