//! Property-based tests for the storage engine's core invariants.

use proptest::prelude::*;
use relstore::predicate::like_match;
use relstore::{
    ColumnDef, Database, Date, DateTime, IndexDef, Table, TableSchema, Value, ValueType,
};
use std::sync::Arc;

// ---------- LIKE vs a reference implementation ----------

/// Naive recursive reference for LIKE.
fn like_ref(s: &[char], p: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('%') => {
            (0..=s.len()).any(|k| like_ref(&s[k..], &p[1..]))
        }
        Some('_') => !s.is_empty() && like_ref(&s[1..], &p[1..]),
        Some(c) => s.first() == Some(c) && like_ref(&s[1..], &p[1..]),
    }
}

proptest! {
    #[test]
    fn like_matches_reference(s in "[abc_%]{0,12}", p in "[abc_%]{0,8}") {
        let sc: Vec<char> = s.chars().collect();
        let pc: Vec<char> = p.chars().collect();
        prop_assert_eq!(like_match(&s, &p), like_ref(&sc, &pc));
    }
}

// ---------- civil date arithmetic ----------

proptest! {
    #[test]
    fn date_epoch_roundtrip(z in -1_000_000i64..1_000_000) {
        let d = Date::from_days_from_epoch(z);
        prop_assert_eq!(d.days_from_epoch(), z);
        // components must be valid
        prop_assert!(Date::new(d.year, d.month, d.day).is_ok());
    }

    #[test]
    fn date_epoch_monotonic(z in -500_000i64..500_000) {
        let a = Date::from_days_from_epoch(z);
        let b = Date::from_days_from_epoch(z + 1);
        prop_assert!(a < b);
    }

    #[test]
    fn datetime_epoch_roundtrip(s in -50_000_000_000i64..50_000_000_000) {
        let dt = DateTime::from_seconds_from_epoch(s);
        prop_assert_eq!(dt.seconds_from_epoch(), s);
    }
}

// ---------- value ordering is a total order ----------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::from),
        any::<bool>().prop_map(Value::Bool),
        (-100_000i64..100_000).prop_map(|z| Value::Date(Date::from_days_from_epoch(z))),
    ]
}

proptest! {
    #[test]
    fn index_cmp_antisymmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.index_cmp(&b), b.index_cmp(&a).reverse());
    }

    #[test]
    fn index_cmp_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let (ab, bc, ac) = (a.index_cmp(&b), b.index_cmp(&c), a.index_cmp(&c));
        if ab == Less && bc == Less { prop_assert_eq!(ac, Less); }
        if ab == Greater && bc == Greater { prop_assert_eq!(ac, Greater); }
        if ab == Equal && bc == Equal { prop_assert_eq!(ac, Equal); }
    }
}

// ---------- table/index integrity under random operation sequences ----------

#[derive(Debug, Clone)]
enum Op {
    Insert { name: String, size: i64 },
    DeleteByName(String),
    UpdateSize { name: String, size: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let name = "[ab][0-9]"; // small key space to force collisions
    prop_oneof![
        (name, any::<i64>()).prop_map(|(name, size)| Op::Insert { name, size }),
        name.prop_map(Op::DeleteByName),
        (name, any::<i64>()).prop_map(|(name, size)| Op::UpdateSize { name, size }),
    ]
}

fn mk_table() -> Table {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::auto_id("id"),
            ColumnDef::required("name", ValueType::Str),
            ColumnDef::required("size", ValueType::Int),
        ],
        &["id"],
    )
    .unwrap();
    let mut t = Table::new(schema);
    t.create_index(IndexDef { name: "by_name".into(), columns: vec![1], unique: true }).unwrap();
    t.create_index(IndexDef { name: "by_size".into(), columns: vec![2], unique: false }).unwrap();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn table_integrity_under_random_ops(ops in prop::collection::vec(arb_op(), 1..60)) {
        use std::collections::HashMap;
        let mut t = mk_table();
        let mut model: HashMap<String, (relstore::RowId, i64)> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { name, size } => {
                    let r = t.insert(vec![Value::Null, name.as_str().into(), Value::Int(size)]);
                    if model.contains_key(&name) {
                        prop_assert!(r.is_err(), "duplicate insert must fail");
                    } else {
                        model.insert(name, (r.unwrap(), size));
                    }
                }
                Op::DeleteByName(name) => {
                    if let Some((id, _)) = model.remove(&name) {
                        t.delete(id).unwrap();
                    }
                }
                Op::UpdateSize { name, size } => {
                    if let Some((id, s)) = model.get_mut(&name) {
                        let id = *id;
                        let row = t.get(id).unwrap().clone();
                        t.update(id, vec![row[0].clone(), row[1].clone(), Value::Int(size)])
                            .unwrap();
                        *s = size;
                    }
                }
            }
            t.check_integrity().unwrap();
        }
        // final state matches the model
        prop_assert_eq!(t.len(), model.len());
        for (name, (id, size)) in &model {
            let row = t.get(*id).unwrap();
            prop_assert_eq!(&row[1], &Value::from(name.as_str()));
            prop_assert_eq!(&row[2], &Value::Int(*size));
        }
    }
}

// ---------- planner: indexed access must agree with a full scan ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn indexed_query_equals_full_scan(
        rows in prop::collection::vec(("[a-c]", 0i64..20), 0..40),
        probe_name in "[a-c]",
        lo in 0i64..20,
        hi in 0i64..20,
    ) {
        let db = Arc::new(Database::new());
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT,
                             name VARCHAR(8) NOT NULL,
                             v INTEGER NOT NULL);
             CREATE INDEX t_name_v ON t (name, v);",
        ).unwrap();
        // shadow table without the secondary index
        db.execute_script(
            "CREATE TABLE u (id INTEGER PRIMARY KEY AUTO_INCREMENT,
                             name VARCHAR(8) NOT NULL,
                             v INTEGER NOT NULL);",
        ).unwrap();
        for (n, v) in &rows {
            db.execute("INSERT INTO t (name, v) VALUES (?, ?)",
                       &[n.as_str().into(), (*v).into()]).unwrap();
            db.execute("INSERT INTO u (name, v) VALUES (?, ?)",
                       &[n.as_str().into(), (*v).into()]).unwrap();
        }
        let sqls = [
            "SELECT id FROM {T} WHERE name = ? ORDER BY id",
            "SELECT id FROM {T} WHERE name = ? AND v >= ? ORDER BY id",
            "SELECT id FROM {T} WHERE name = ? AND v >= ? AND v < ? ORDER BY id",
        ];
        let params: [&[Value]; 3] = [
            &[probe_name.as_str().into()],
            &[probe_name.as_str().into(), lo.into()],
            &[probe_name.as_str().into(), lo.into(), hi.into()],
        ];
        for (sql, ps) in sqls.iter().zip(params.iter()) {
            let rt = db.query(&sql.replace("{T}", "t"), ps).unwrap();
            let ru = db.query(&sql.replace("{T}", "u"), ps).unwrap();
            prop_assert_eq!(rt.rows, ru.rows);
        }
    }
}
