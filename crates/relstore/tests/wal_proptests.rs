//! Property test: for any random statement sequence, a durable database
//! that "crashes" (drops without checkpoint) and reopens is
//! indistinguishable from an in-memory database that executed the same
//! statements — with and without an intervening checkpoint.

use std::sync::Arc;

use proptest::prelude::*;
use relstore::{Database, SyncPolicy, Value};

#[derive(Debug, Clone)]
enum Stmt {
    Insert { name: String, v: i64 },
    Update { name: String, v: i64 },
    Delete { name: String },
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let name = "[ab][0-2]";
    prop_oneof![
        (name, any::<i64>()).prop_map(|(name, v)| Stmt::Insert { name, v }),
        (name, any::<i64>()).prop_map(|(name, v)| Stmt::Update { name, v }),
        name.prop_map(|name| Stmt::Delete { name }),
    ]
}

fn apply(db: &Database, s: &Stmt) {
    // Duplicate inserts fail on both sides identically; ignore results.
    let _ = match s {
        Stmt::Insert { name, v } => db.execute(
            "INSERT INTO t (name, v) VALUES (?, ?)",
            &[name.as_str().into(), Value::Int(*v)],
        ),
        Stmt::Update { name, v } => db.execute(
            "UPDATE t SET v = ? WHERE name = ?",
            &[Value::Int(*v), name.as_str().into()],
        ),
        Stmt::Delete { name } => {
            db.execute("DELETE FROM t WHERE name = ?", &[name.as_str().into()])
        }
    };
}

fn dump(db: &Database) -> Vec<Vec<Value>> {
    db.query("SELECT name, v FROM t ORDER BY name", &[]).unwrap().rows
}

const DDL: &str = "CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT,
                                   name VARCHAR(8) NOT NULL UNIQUE, v INTEGER)";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn recovery_matches_memory(
        ops in prop::collection::vec(arb_stmt(), 1..30),
        checkpoint_at in 0usize..30,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "relstore-walprop-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let reference = Arc::new(Database::new());
        reference.execute(DDL, &[]).unwrap();
        {
            let durable = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
            durable.execute(DDL, &[]).unwrap();
            for (i, op) in ops.iter().enumerate() {
                apply(&reference, op);
                apply(&durable, op);
                if i == checkpoint_at {
                    durable.checkpoint().unwrap();
                }
            }
            prop_assert_eq!(dump(&durable), dump(&reference));
        } // crash: no final checkpoint

        let recovered = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
        prop_assert_eq!(dump(&recovered), dump(&reference));
        // the recovered database stays fully usable
        recovered.execute("INSERT INTO t (name, v) VALUES ('zz', 1)", &[]).unwrap();
        let t = recovered.table("t").unwrap();
        t.read().check_integrity().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
