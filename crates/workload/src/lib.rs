//! # workload — evaluation workload generation and client driver
//!
//! Reproduces the paper's §7 methodology: bulk-loaded catalogs of N
//! logical files (1000 per collection, ten typed user-defined attributes
//! each), and a closed-loop driver running H simulated client hosts × T
//! threads of add/simple-query/complex-query operations against either
//! the in-process catalog ("no web service") or the SOAP service.

#![warn(missing_docs)]

pub mod driver;
pub mod ops;
pub mod populate;
pub mod spec;

pub use driver::{
    run_closed_loop, run_mixed, Measurement, MixedConfig, MixedMeasurement, RunConfig, Workload,
};
pub use ops::{driver_credential, make_worker, Access, OpKind};
pub use populate::{
    build_catalog, build_catalog_opts, build_catalog_with, build_sharded_catalog,
    build_sharded_catalog_opts, BuiltCatalog, BuiltShardedCatalog, ADMIN_DN,
};
