//! The paper's three measured operations — add (+delete), simple query,
//! complex query — over either access path:
//!
//! * **Direct** — in-process calls into [`mcs::Mcs`], standing in for the
//!   paper's "MySQL without web service" baseline. An optional simulated
//!   per-operation RTT models the MySQL wire protocol hop the paper's
//!   client hosts paid.
//! * **Soap** — through `mcs-net`'s client against a real HTTP server,
//!   the paper's "MCS with web service" configuration (connection per
//!   request by default, like the 2003 Axis stack).

use std::sync::Arc;
use std::time::Duration;

use mcs::{Credential, FileSpec, Mcs};
use mcs_net::{BinMcsClient, McsClient};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soapstack::TransportOpts;

use crate::driver::Workload;
use crate::spec;

/// Which path operations take to the catalog.
#[derive(Clone)]
pub enum Access {
    /// In-process catalog calls ("no web service" baseline). The
    /// `wire_rtt` simulates the database wire-protocol round trip each
    /// client host pays per operation (zero = pure in-process).
    Direct {
        /// The catalog.
        mcs: Arc<Mcs>,
        /// Per-operation simulated round trip.
        wire_rtt: Duration,
    },
    /// SOAP calls to an MCS server.
    Soap {
        /// Server address (`host:port`).
        addr: String,
        /// Per-exchange simulated round trip (per host on a LAN).
        rtt: Duration,
        /// Reuse connections across calls (2003 default: false).
        keep_alive: bool,
    },
    /// Binary-protocol calls to a `BinServer` (DESIGN.md §7.7). Always
    /// one persistent connection per worker.
    Bin {
        /// Server address (`host:port`).
        addr: String,
        /// Per-wire-round-trip simulated latency.
        rtt: Duration,
        /// Pipeline window: 1 issues one synchronous request per round
        /// trip; >1 keeps that many requests in flight (simple queries
        /// only — other kinds fall back to the synchronous path).
        pipeline: usize,
    },
}

/// The measured operation kinds (paper §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Add a logical file with ten attributes, then delete it
    /// (size-preserving, exactly as the paper does).
    AddDelete,
    /// Value match on a single static attribute (lookup by logical name).
    SimpleQuery,
    /// Conjunctive value match on `k` user-defined attributes.
    ComplexQuery {
        /// Number of attributes matched (paper uses 10; Figure 11
        /// sweeps 1..=10).
        attrs: usize,
    },
}

/// Credential the drivers act as (the service is opened to [`mcs::ANYONE`]
/// by the populator).
pub fn driver_credential(host: usize, thread: usize) -> Credential {
    Credential::new(format!("/O=Grid/OU=bench/CN=host{host}-thread{thread}"))
}

fn unique_name(host: usize, thread: usize, counter: u64) -> String {
    format!("tmp.h{host:02}.t{thread:02}.{counter:012}.dat")
}

fn add_spec(host: usize, thread: usize, counter: u64, n_files: u64) -> FileSpec {
    let mut s = FileSpec::named(unique_name(host, thread, counter));
    // attribute values drawn from the same distributions as loaded files
    s.attributes = spec::attributes_of(n_files.wrapping_add(counter));
    s
}

/// Build one worker for (host, thread).
pub fn make_worker(
    access: &Access,
    kind: OpKind,
    n_files: u64,
    host: usize,
    thread: usize,
) -> Box<dyn Workload> {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0000 ^ ((host as u64) << 8) ^ thread as u64);
    let cred = driver_credential(host, thread);
    match access.clone() {
        Access::Direct { mcs, wire_rtt } => {
            let mut counter = 0u64;
            Box::new(move || {
                if !wire_rtt.is_zero() {
                    std::thread::sleep(wire_rtt);
                }
                match kind {
                    OpKind::AddDelete => {
                        counter += 1;
                        let spec = add_spec(host, thread, counter, n_files);
                        match mcs.create_file(&cred, &spec) {
                            Ok(_) => mcs.delete_file(&cred, &spec.name).is_ok(),
                            Err(_) => false,
                        }
                    }
                    OpKind::SimpleQuery => {
                        let i = rng.gen_range(0..n_files);
                        mcs.get_file(&cred, &spec::file_name(i)).is_ok()
                    }
                    OpKind::ComplexQuery { attrs } => {
                        let i = rng.gen_range(0..n_files);
                        mcs.query_by_attributes(&cred, &spec::complex_query(i, attrs)).is_ok()
                    }
                }
            })
        }
        Access::Soap { addr, rtt, keep_alive } => {
            let opts = TransportOpts { keep_alive, simulated_rtt: rtt };
            let mut client = McsClient::with_opts(addr, cred, opts);
            let mut counter = 0u64;
            Box::new(move || match kind {
                OpKind::AddDelete => {
                    counter += 1;
                    let spec = add_spec(host, thread, counter, n_files);
                    match client.create_file(&spec) {
                        Ok(_) => client.delete_file(&spec.name).is_ok(),
                        Err(_) => false,
                    }
                }
                OpKind::SimpleQuery => {
                    let i = rng.gen_range(0..n_files);
                    client.get_file(&spec::file_name(i)).is_ok()
                }
                OpKind::ComplexQuery { attrs } => {
                    let i = rng.gen_range(0..n_files);
                    client.query_by_attributes(&spec::complex_query(i, attrs)).is_ok()
                }
            })
        }
        Access::Bin { addr, rtt, pipeline } => {
            let mut client = BinMcsClient::with_rtt(addr, cred, rtt);
            if pipeline > 1 && kind == OpKind::SimpleQuery {
                // Sliding window: issue one request per tick; once the
                // window is full, also retire the oldest. Each tick
                // counts one completed-equivalent operation (the up-to-
                // `pipeline` requests still in flight at shutdown are a
                // constant-bounded undercount).
                return Box::new(move || {
                    let i = rng.gen_range(0..n_files);
                    if client.send_get_file(&spec::file_name(i)).is_err() {
                        return false;
                    }
                    if client.inflight() >= pipeline {
                        return client.recv_file().is_ok();
                    }
                    true
                });
            }
            let mut counter = 0u64;
            Box::new(move || match kind {
                OpKind::AddDelete => {
                    counter += 1;
                    let spec = add_spec(host, thread, counter, n_files);
                    match client.create_file(&spec) {
                        Ok(_) => client.delete_file(&spec.name).is_ok(),
                        Err(_) => false,
                    }
                }
                OpKind::SimpleQuery => {
                    let i = rng.gen_range(0..n_files);
                    client.get_file(&spec::file_name(i)).is_ok()
                }
                OpKind::ComplexQuery { attrs } => {
                    let i = rng.gen_range(0..n_files);
                    client.query_by_attributes(&spec::complex_query(i, attrs)).is_ok()
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_closed_loop, RunConfig};
    use crate::populate::build_catalog;
    use mcs::IndexProfile;

    #[test]
    fn direct_ops_succeed() {
        let built = build_catalog(1_000, IndexProfile::Paper2003);
        let access = Access::Direct { mcs: Arc::clone(&built.mcs), wire_rtt: Duration::ZERO };
        for kind in [OpKind::AddDelete, OpKind::SimpleQuery, OpKind::ComplexQuery { attrs: 10 }]
        {
            let mut w = make_worker(&access, kind, built.n_files, 0, 0);
            assert!(w.run_once(), "{kind:?} failed");
        }
        // add/delete preserved database size
        assert_eq!(built.mcs.file_count().unwrap(), 1_000);
    }

    #[test]
    fn soap_ops_succeed() {
        let built = build_catalog(500, IndexProfile::Paper2003);
        let server = mcs_net::McsServer::start(Arc::clone(&built.mcs), "127.0.0.1:0", 2).unwrap();
        let access = Access::Soap {
            addr: server.addr().to_string(),
            rtt: Duration::ZERO,
            keep_alive: false,
        };
        for kind in [OpKind::AddDelete, OpKind::SimpleQuery, OpKind::ComplexQuery { attrs: 3 }] {
            let mut w = make_worker(&access, kind, built.n_files, 0, 0);
            assert!(w.run_once(), "{kind:?} failed");
        }
    }

    #[test]
    fn bin_ops_succeed() {
        let built = build_catalog(500, IndexProfile::Paper2003);
        let server = mcs_net::BinServer::start(Arc::clone(&built.mcs), "127.0.0.1:0", 2).unwrap();
        let access = Access::Bin {
            addr: server.addr().to_string(),
            rtt: Duration::ZERO,
            pipeline: 1,
        };
        for kind in [OpKind::AddDelete, OpKind::SimpleQuery, OpKind::ComplexQuery { attrs: 3 }] {
            let mut w = make_worker(&access, kind, built.n_files, 0, 0);
            assert!(w.run_once(), "{kind:?} failed");
        }
        // pipelined simple queries keep a window in flight and still succeed
        let access = Access::Bin {
            addr: server.addr().to_string(),
            rtt: Duration::ZERO,
            pipeline: 8,
        };
        let mut w = make_worker(&access, OpKind::SimpleQuery, built.n_files, 0, 1);
        for _ in 0..64 {
            assert!(w.run_once());
        }
    }

    #[test]
    fn closed_loop_measures_simple_queries() {
        let built = build_catalog(1_000, IndexProfile::Paper2003);
        let access = Access::Direct { mcs: Arc::clone(&built.mcs), wire_rtt: Duration::ZERO };
        let cfg = RunConfig::single_host(2, Duration::from_millis(100));
        let m = run_closed_loop(&cfg, |h, t| {
            make_worker(&access, OpKind::SimpleQuery, built.n_files, h, t)
        });
        assert!(m.ops > 10, "implausibly low query rate: {}", m.ops);
        assert_eq!(m.errors, 0);
    }
}
