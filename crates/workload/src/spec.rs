//! The paper's evaluation workload (§7), as data.
//!
//! Databases of N logical files, 1000 files per logical collection, ten
//! user-defined attributes of mixed types (string, float, integer, date,
//! datetime — two of each) attached to every file and every collection.
//! Attribute values are deterministic functions of the file index so the
//! drivers can build "query for exactly file i's attributes" complex
//! queries without lookups, matching the paper's complex-query operation.

use mcs::{AttrPredicate, AttrType, Attribute};
use relstore::{Date, DateTime, Time, Value};

/// Files per logical collection (paper §7: "1000 logical files per
/// collection").
pub const FILES_PER_COLLECTION: u64 = 1000;

/// The ten user-defined attributes of the workload.
pub const ATTR_NAMES: [&str; 10] = [
    "wl_site", "wl_type", "wl_seq", "wl_coll", "wl_freq", "wl_snr", "wl_date", "wl_caldate",
    "wl_start", "wl_end",
];

/// Attribute types, index-aligned with [`ATTR_NAMES`].
pub const ATTR_TYPES: [AttrType; 10] = [
    AttrType::Str,
    AttrType::Str,
    AttrType::Int,
    AttrType::Int,
    AttrType::Float,
    AttrType::Float,
    AttrType::Date,
    AttrType::Date,
    AttrType::DateTime,
    AttrType::DateTime,
];

const EPOCH_DAY: i64 = 12_341; // 2003-10-16
const EPOCH_SEC: i64 = 1_066_262_400;

/// Logical file name for index `i`.
pub fn file_name(i: u64) -> String {
    format!("lfn.{i:09}.dat")
}

/// Collection name for collection index `c`.
pub fn collection_name(c: u64) -> String {
    format!("coll.{c:06}")
}

/// Collection index owning file `i`.
pub fn collection_of(i: u64) -> u64 {
    i / FILES_PER_COLLECTION
}

/// Value of attribute `a` (0..10) for file index `i`.
pub fn attr_value(a: usize, i: u64) -> Value {
    let i = i as i64;
    match a {
        0 => Value::from(format!("site_{:02}", i % 50)),
        1 => Value::from(format!("type_{:02}", i % 20)),
        2 => Value::Int(i % 1000),
        3 => Value::Int(i / 1000),
        4 => Value::Float((i % 997) as f64 * 0.5),
        5 => Value::Float((i % 101) as f64 * 1.25),
        6 => Value::Date(Date::from_days_from_epoch(EPOCH_DAY + i % 365)),
        7 => Value::Date(Date::from_days_from_epoch(EPOCH_DAY + i % 30)),
        8 => Value::DateTime(DateTime::from_seconds_from_epoch(EPOCH_SEC + (i % 86_400) * 7)),
        9 => Value::DateTime(DateTime::from_seconds_from_epoch(EPOCH_SEC + (i % 3_600) * 11)),
        _ => panic!("attribute index out of range"),
    }
}

/// All ten attributes of file `i`.
pub fn attributes_of(i: u64) -> Vec<Attribute> {
    (0..10)
        .map(|a| Attribute { name: ATTR_NAMES[a].to_owned(), value: attr_value(a, i) })
        .collect()
}

/// The paper's complex-query operation for file `i`: equality on its
/// first `k` user-defined attributes (k = 10 reproduces Figures 7/10;
/// varying k reproduces Figure 11). Attributes 2 and 3 together pin the
/// file index, so full queries typically match exactly one file.
pub fn complex_query(i: u64, k: usize) -> Vec<AttrPredicate> {
    (0..k.min(10))
        .map(|a| AttrPredicate {
            name: ATTR_NAMES[a].to_owned(),
            op: mcs::AttrOp::Eq,
            value: attr_value(a, i),
        })
        .collect()
}

/// Creation timestamp used for bulk-loaded rows.
pub fn load_timestamp() -> DateTime {
    DateTime::new(Date::from_days_from_epoch(EPOCH_DAY), Time::new(0, 0, 0).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_declared_types() {
        for a in 0..10 {
            for i in [0u64, 1, 999, 123_456] {
                let v = attr_value(a, i);
                assert_eq!(
                    mcs::AttrType::of_value(&v),
                    Some(ATTR_TYPES[a]),
                    "attr {a} file {i}"
                );
            }
        }
    }

    #[test]
    fn full_query_pins_the_file() {
        // attrs 2 (i % 1000) and 3 (i / 1000) jointly identify i
        let q = complex_query(424_242, 10);
        assert_eq!(q.len(), 10);
        assert_eq!(q[2].value, Value::Int(242));
        assert_eq!(q[3].value, Value::Int(424));
    }

    #[test]
    fn names_are_stable_and_sortable() {
        assert_eq!(file_name(7), "lfn.000000007.dat");
        assert!(file_name(9) < file_name(10));
        assert_eq!(collection_of(999), 0);
        assert_eq!(collection_of(1000), 1);
        assert_eq!(collection_name(3), "coll.000003");
    }
}
