//! Closed-loop measurement driver: H simulated client hosts × T threads
//! each issue one operation after another for a fixed duration, and the
//! driver reports the sustained operation rate (the paper's
//! "operations per second" methodology).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Run phases communicated to workers.
const WARMUP: u8 = 0;
const MEASURE: u8 = 1;
const STOP: u8 = 2;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Simulated client hosts.
    pub hosts: usize,
    /// Threads per host.
    pub threads_per_host: usize,
    /// Measured interval.
    pub duration: Duration,
    /// Warm-up before measurement starts.
    pub warmup: Duration,
    /// Keep measuring (beyond `duration`) until at least this many
    /// operations completed — slow operations (complex queries on large
    /// databases) would otherwise report noise or zero.
    pub min_ops: u64,
    /// Hard cap on the measurement extension.
    pub max_extension: Duration,
}

impl RunConfig {
    /// Single host with `threads` threads (Figures 5–7).
    pub fn single_host(threads: usize, duration: Duration) -> RunConfig {
        RunConfig {
            hosts: 1,
            threads_per_host: threads,
            duration,
            warmup: Duration::from_millis(200),
            min_ops: 0,
            max_extension: Duration::ZERO,
        }
    }

    /// Multiple hosts, four threads each (Figures 8–10).
    pub fn hosts(hosts: usize, duration: Duration) -> RunConfig {
        RunConfig {
            hosts,
            threads_per_host: 4,
            duration,
            warmup: Duration::from_millis(200),
            min_ops: 0,
            max_extension: Duration::ZERO,
        }
    }
}

/// One worker's operation source. `run_once` performs one operation and
/// reports success.
pub trait Workload: Send {
    /// Perform one operation.
    fn run_once(&mut self) -> bool;
}

impl<F: FnMut() -> bool + Send> Workload for F {
    fn run_once(&mut self) -> bool {
        self()
    }
}

/// Result of a measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Successful operations inside the measured interval.
    pub ops: u64,
    /// Failed operations inside the measured interval.
    pub errors: u64,
    /// Actual measured interval.
    pub elapsed: Duration,
}

impl Measurement {
    /// Sustained successful-operation rate (ops/second).
    pub fn rate(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Run `cfg.hosts × cfg.threads_per_host` workers built by
/// `make_worker(host, thread)` in a closed loop and measure throughput.
pub fn run_closed_loop<F>(cfg: &RunConfig, make_worker: F) -> Measurement
where
    F: Fn(usize, usize) -> Box<dyn Workload>,
{
    let phase = Arc::new(AtomicU8::new(WARMUP));
    let ops = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let total_workers = cfg.hosts * cfg.threads_per_host;
    let start_barrier = Arc::new(Barrier::new(total_workers + 1));

    std::thread::scope(|scope| {
        for host in 0..cfg.hosts {
            for thread in 0..cfg.threads_per_host {
                let mut worker = make_worker(host, thread);
                let phase = Arc::clone(&phase);
                let ops = Arc::clone(&ops);
                let errors = Arc::clone(&errors);
                let barrier = Arc::clone(&start_barrier);
                scope.spawn(move || {
                    barrier.wait();
                    loop {
                        match phase.load(Ordering::Acquire) {
                            STOP => return,
                            current => {
                                let success = worker.run_once();
                                if current == MEASURE {
                                    if success {
                                        ops.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        }
        start_barrier.wait();
        std::thread::sleep(cfg.warmup);
        phase.store(MEASURE, Ordering::Release);
        let t0 = Instant::now();
        std::thread::sleep(cfg.duration);
        // adaptive extension for slow operations
        while ops.load(Ordering::Relaxed) + errors.load(Ordering::Relaxed) < cfg.min_ops
            && t0.elapsed() < cfg.duration + cfg.max_extension
        {
            std::thread::sleep(Duration::from_millis(50));
        }
        phase.store(STOP, Ordering::Release);
        let elapsed = t0.elapsed();
        // scope joins all workers here
        Measurement {
            ops: ops.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
            elapsed,
        }
    })
}

/// Configuration for a mixed read/write run: independent reader and
/// writer thread counts against one catalog, with per-class counters, so
/// reader throughput under concurrent writers is measurable directly (the
/// MVCC A/B experiment of Figure 16).
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// Closed-loop reader threads.
    pub readers: usize,
    /// Closed-loop writer threads.
    pub writers: usize,
    /// Measured interval.
    pub duration: Duration,
    /// Warm-up before measurement starts.
    pub warmup: Duration,
    /// Keep measuring until at least this many operations (both classes
    /// combined) completed.
    pub min_ops: u64,
    /// Hard cap on the measurement extension.
    pub max_extension: Duration,
}

impl MixedConfig {
    /// `readers` + `writers` threads over `duration` with the driver's
    /// standard 200ms warmup.
    pub fn new(readers: usize, writers: usize, duration: Duration) -> MixedConfig {
        MixedConfig {
            readers,
            writers,
            duration,
            warmup: Duration::from_millis(200),
            min_ops: 0,
            max_extension: Duration::ZERO,
        }
    }
}

/// Result of a mixed run: one [`Measurement`] per operation class over
/// the same measured interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedMeasurement {
    /// The reader threads' aggregate measurement.
    pub reads: Measurement,
    /// The writer threads' aggregate measurement.
    pub writes: Measurement,
}

/// Run `cfg.readers` reader workers (built by `make_reader(i)`) and
/// `cfg.writers` writer workers (built by `make_writer(i)`) concurrently
/// against the same store and measure each class's throughput over one
/// shared interval. Same phase protocol as [`run_closed_loop`].
pub fn run_mixed<R, W>(cfg: &MixedConfig, make_reader: R, make_writer: W) -> MixedMeasurement
where
    R: Fn(usize) -> Box<dyn Workload>,
    W: Fn(usize) -> Box<dyn Workload>,
{
    let phase = Arc::new(AtomicU8::new(WARMUP));
    // [read_ops, read_errors, write_ops, write_errors]
    let counters: Arc<[AtomicU64; 4]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let total_workers = cfg.readers + cfg.writers;
    let start_barrier = Arc::new(Barrier::new(total_workers + 1));

    std::thread::scope(|scope| {
        let spawn = |mut worker: Box<dyn Workload>, base: usize| {
            let phase = Arc::clone(&phase);
            let counters = Arc::clone(&counters);
            let barrier = Arc::clone(&start_barrier);
            scope.spawn(move || {
                barrier.wait();
                loop {
                    match phase.load(Ordering::Acquire) {
                        STOP => return,
                        current => {
                            let success = worker.run_once();
                            if current == MEASURE {
                                let slot = base + usize::from(!success);
                                counters[slot].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        };
        for i in 0..cfg.readers {
            spawn(make_reader(i), 0);
        }
        for i in 0..cfg.writers {
            spawn(make_writer(i), 2);
        }
        start_barrier.wait();
        std::thread::sleep(cfg.warmup);
        phase.store(MEASURE, Ordering::Release);
        let t0 = Instant::now();
        std::thread::sleep(cfg.duration);
        let done = |cs: &[AtomicU64; 4]| -> u64 {
            cs.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        };
        while done(&counters) < cfg.min_ops && t0.elapsed() < cfg.duration + cfg.max_extension {
            std::thread::sleep(Duration::from_millis(50));
        }
        phase.store(STOP, Ordering::Release);
        let elapsed = t0.elapsed();
        // scope joins all workers here
        MixedMeasurement {
            reads: Measurement {
                ops: counters[0].load(Ordering::Relaxed),
                errors: counters[1].load(Ordering::Relaxed),
                elapsed,
            },
            writes: Measurement {
                ops: counters[2].load(Ordering::Relaxed),
                errors: counters[3].load(Ordering::Relaxed),
                elapsed,
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_measured_ops() {
        let cfg = RunConfig {
            hosts: 2,
            threads_per_host: 2,
            duration: Duration::from_millis(120),
            warmup: Duration::from_millis(40),
            min_ops: 0,
            max_extension: Duration::ZERO,
        };
        let m = run_closed_loop(&cfg, |_h, _t| {
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(1));
                true
            })
        });
        assert!(m.ops > 0);
        assert_eq!(m.errors, 0);
        // 4 workers × ~1ms/op over ~120ms ≈ 480 max; warmup excluded
        assert!(m.ops < 800, "warmup leaked into measurement: {}", m.ops);
        assert!(m.rate() > 0.0);
    }

    #[test]
    fn min_ops_extends_measurement() {
        let mut cfg = RunConfig::single_host(1, Duration::from_millis(30));
        cfg.min_ops = 3;
        cfg.max_extension = Duration::from_secs(5);
        // each op takes ~80ms, so 30ms would catch none without extension
        let m = run_closed_loop(&cfg, |_h, _t| {
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(80));
                true
            })
        });
        assert!(m.ops >= 3, "extension must gather min_ops: got {}", m.ops);
        assert!(m.elapsed > Duration::from_millis(30));
    }

    #[test]
    fn mixed_run_counts_classes_separately() {
        let cfg = MixedConfig::new(2, 1, Duration::from_millis(80));
        let m = run_mixed(
            &cfg,
            |_i| {
                Box::new(|| {
                    std::thread::sleep(Duration::from_micros(300));
                    true
                })
            },
            |_i| {
                let mut n = 0u64;
                Box::new(move || {
                    n += 1;
                    std::thread::sleep(Duration::from_micros(300));
                    n % 2 == 0 // half the writes "fail"
                })
            },
        );
        assert!(m.reads.ops > 0);
        assert_eq!(m.reads.errors, 0);
        assert!(m.writes.ops > 0);
        assert!(m.writes.errors > 0, "writer failures land in the write class");
        assert_eq!(m.reads.elapsed, m.writes.elapsed);
        assert!(m.reads.rate() > m.writes.rate(), "2 readers vs 1 writer");
    }

    #[test]
    fn errors_counted_separately() {
        let cfg = RunConfig::single_host(1, Duration::from_millis(60));
        let m = run_closed_loop(&cfg, |_h, _t| {
            let mut i = 0u64;
            Box::new(move || {
                i += 1;
                std::thread::sleep(Duration::from_micros(200));
                i % 2 == 0
            })
        });
        assert!(m.errors > 0);
        assert!(m.ops > 0);
    }
}
