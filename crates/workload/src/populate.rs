//! Bulk catalog population.
//!
//! The paper loaded databases of 100 k / 1 M / 5 M logical files before
//! measuring. Loading through the per-file service API would dominate
//! setup time, so — like any production catalog deployment — we provide a
//! bulk loader that writes the same rows through the storage engine with
//! batched multi-row prepared inserts. The resulting database is
//! byte-for-byte what the per-file API would have produced (asserted by
//! `tests/populate_equiv.rs`).
//!
//! [`build_sharded_catalog`] loads a hash-partitioned catalog
//! (DESIGN.md §7.4) the same way, with one writer thread per shard:
//! collections (global state) are written identically to every shard,
//! per-file rows only to the shard `mcs::shard_of_name` assigns them.

use std::sync::Arc;

use mcs::{Credential, IndexProfile, ManualClock, Mcs, ShardedCatalog};
use relstore::{Database, Value};

use crate::spec::{self, ATTR_NAMES, ATTR_TYPES, FILES_PER_COLLECTION};

/// A populated catalog ready for the evaluation drivers.
pub struct BuiltCatalog {
    /// The catalog.
    pub mcs: Arc<Mcs>,
    /// Superuser credential.
    pub admin: Credential,
    /// Number of logical files loaded.
    pub n_files: u64,
}

/// A populated hash-partitioned catalog (or a single-shard one wrapped in
/// the same interface).
pub struct BuiltShardedCatalog {
    /// The catalog.
    pub catalog: Arc<ShardedCatalog>,
    /// Superuser credential.
    pub admin: Credential,
    /// Number of logical files loaded.
    pub n_files: u64,
}

/// DN of the bulk loader / superuser.
pub const ADMIN_DN: &str = "/O=Grid/OU=ISI/CN=mcs-admin";

fn typed_null_row(name: &str, a: usize, v: Value) -> [Value; 8] {
    // columns: name, attr_type, str, int, float, date, time, datetime
    let mut row: [Value; 8] = [
        name.into(),
        ATTR_TYPES[a].code().into(),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
    ];
    let col = match ATTR_TYPES[a] {
        mcs::AttrType::Str => 2,
        mcs::AttrType::Int => 3,
        mcs::AttrType::Float => 4,
        mcs::AttrType::Date => 5,
        mcs::AttrType::Time => 6,
        mcs::AttrType::DateTime => 7,
    };
    row[col] = v;
    row
}

/// Batched insert of collection rows `0..n_colls` (auto-increment ids
/// from 1 in creation order).
fn insert_collections(db: &Arc<Database>, n_colls: u64, created: &Value) {
    let batch = 500usize;
    let one = "(?, ?, ?)";
    let sql_batch = format!(
        "INSERT INTO logical_collections (name, creator, created) VALUES {}",
        vec![one; batch].join(", ")
    );
    let prepared = db.prepare(&sql_batch).expect("prepare");
    let single = db
        .prepare("INSERT INTO logical_collections (name, creator, created) VALUES (?, ?, ?)")
        .expect("prepare");
    let mut params: Vec<Value> = Vec::with_capacity(batch * 3);
    let mut in_batch = 0usize;
    for c in 0..n_colls {
        params.push(spec::collection_name(c).into());
        params.push(ADMIN_DN.into());
        params.push(created.clone());
        in_batch += 1;
        if in_batch == batch {
            db.execute_prepared(&prepared, &params).expect("insert collections");
            params.clear();
            in_batch = 0;
        }
    }
    for chunk in params.chunks(3) {
        db.execute_prepared(&single, chunk).expect("insert collection");
    }
}

/// Batched insert of the file rows for the global indices yielded by
/// `files` (auto-increment ids from 1 in yield order).
fn insert_files(db: &Arc<Database>, files: impl Iterator<Item = u64>, created: &Value) {
    let batch = 500usize;
    let one = "(?, ?, ?, ?)";
    let sql_batch = format!(
        "INSERT INTO logical_files (name, collection_id, creator, created) VALUES {}",
        vec![one; batch].join(", ")
    );
    let prepared = db.prepare(&sql_batch).expect("prepare");
    let single = db
        .prepare(
            "INSERT INTO logical_files (name, collection_id, creator, created) \
             VALUES (?, ?, ?, ?)",
        )
        .expect("prepare");
    let mut params: Vec<Value> = Vec::with_capacity(batch * 4);
    let mut in_batch = 0usize;
    for i in files {
        params.push(spec::file_name(i).into());
        // collections auto-increment from 1 in creation order
        params.push(Value::Int(spec::collection_of(i) as i64 + 1));
        params.push(ADMIN_DN.into());
        params.push(created.clone());
        in_batch += 1;
        if in_batch == batch {
            db.execute_prepared(&prepared, &params).expect("insert files");
            params.clear();
            in_batch = 0;
        }
    }
    for chunk in params.chunks(4) {
        db.execute_prepared(&single, chunk).expect("insert file");
    }
}

/// Batched insert of the ten workload attributes for each
/// `(object_type, object_id, spec_index)` yielded by `objects`.
fn insert_attributes(db: &Arc<Database>, objects: impl Iterator<Item = (i64, i64, u64)>) {
    let batch = 100usize; // 100 × 10 attrs × 10 cols = 10k params
    let one = "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)";
    let cols = "object_type, object_id, name, attr_type, str_value, int_value, \
                float_value, date_value, time_value, datetime_value";
    let sql_batch =
        format!("INSERT INTO user_attributes ({cols}) VALUES {}", vec![one; batch * 10].join(", "));
    let prepared = db.prepare(&sql_batch).expect("prepare");
    let sql_one = format!("INSERT INTO user_attributes ({cols}) VALUES {one}");
    let single = db.prepare(&sql_one).expect("prepare");
    let mut params: Vec<Value> = Vec::with_capacity(batch * 100);
    let mut in_batch = 0usize;
    for (object_type, object_id, idx) in objects {
        for a in 0..10usize {
            params.push(Value::Int(object_type));
            params.push(Value::Int(object_id));
            let row = typed_null_row(ATTR_NAMES[a], a, spec::attr_value(a, idx));
            params.extend(row);
        }
        in_batch += 1;
        if in_batch == batch {
            db.execute_prepared(&prepared, &params).expect("insert attributes");
            params.clear();
            in_batch = 0;
        }
    }
    for chunk in params.chunks(10) {
        db.execute_prepared(&single, chunk).expect("insert attribute");
    }
}

/// Build and load a catalog with `n_files` logical files per the paper's
/// workload (§7): collections of 1000 files, ten typed attributes per
/// file and per collection, service opened to everyone.
pub fn build_catalog(n_files: u64, profile: IndexProfile) -> BuiltCatalog {
    build_catalog_with(n_files, profile, None)
}

/// [`build_catalog`] with an optional read cache (DESIGN.md §7.3) — the
/// fig14 A/B builds one cached catalog and measures it with and without
/// the per-request bypass.
pub fn build_catalog_with(
    n_files: u64,
    profile: IndexProfile,
    cache: Option<mcs::CacheConfig>,
) -> BuiltCatalog {
    build_catalog_opts(n_files, profile, cache, false)
}

/// [`build_catalog_with`] with the storage engine selectable: with
/// `mvcc` the catalog runs on an MVCC database (snapshot reads, no
/// shared barriers — DESIGN.md §7.5), loaded through the same bulk path.
pub fn build_catalog_opts(
    n_files: u64,
    profile: IndexProfile,
    cache: Option<mcs::CacheConfig>,
    mvcc: bool,
) -> BuiltCatalog {
    let admin = Credential::new(ADMIN_DN);
    let clock = Arc::new(ManualClock::default());
    let db = Arc::new(if mvcc { Database::new_mvcc() } else { Database::new() });
    let mcs =
        Arc::new(Mcs::with_database_cached(db, &admin, profile, clock, cache).expect("bootstrap"));
    mcs.allow_anyone(&admin).expect("open service");
    for (a, name) in ATTR_NAMES.iter().enumerate() {
        mcs.define_attribute(&admin, name, ATTR_TYPES[a], "evaluation workload attribute")
            .expect("define attribute");
    }
    let db = mcs.database();
    let created = Value::DateTime(spec::load_timestamp());
    let n_colls = n_files.div_ceil(FILES_PER_COLLECTION).max(1);

    insert_collections(db, n_colls, &created);
    insert_files(db, 0..n_files, &created);
    // files auto-increment from 1 in creation order
    insert_attributes(
        db,
        (0..n_files)
            .map(|i| (0i64, i as i64 + 1, i))
            .chain((0..n_colls).map(|c| (1i64, c as i64 + 1, c))),
    );

    BuiltCatalog { mcs, admin, n_files }
}

/// [`build_catalog_with`] for a hash-partitioned catalog, loading all
/// shards **in parallel** (one writer thread per shard — shards have
/// independent storage engines, so the load scales with the partition
/// count). With `shards <= 1` this is exactly the single-shard loader
/// wrapped in the [ShardedCatalog] interface.
pub fn build_sharded_catalog(
    n_files: u64,
    profile: IndexProfile,
    shards: usize,
    cache: Option<mcs::CacheConfig>,
) -> BuiltShardedCatalog {
    build_sharded_catalog_opts(n_files, profile, shards, cache, false)
}

/// [`build_sharded_catalog`] with the storage engine selectable (see
/// [`build_catalog_opts`]): with `mvcc` every shard serves snapshot
/// reads, so scatter-gather queries pin a per-shard snapshot vector.
pub fn build_sharded_catalog_opts(
    n_files: u64,
    profile: IndexProfile,
    shards: usize,
    cache: Option<mcs::CacheConfig>,
    mvcc: bool,
) -> BuiltShardedCatalog {
    if shards <= 1 {
        let built = build_catalog_opts(n_files, profile, cache, mvcc);
        return BuiltShardedCatalog {
            catalog: Arc::new(ShardedCatalog::from_single(built.mcs)),
            admin: built.admin,
            n_files,
        };
    }
    let admin = Credential::new(ADMIN_DN);
    let clock = Arc::new(ManualClock::default());
    let catalog = Arc::new(
        ShardedCatalog::in_memory_opts(shards, &admin, profile, clock, cache, mvcc)
            .expect("bootstrap"),
    );
    catalog.allow_anyone(&admin).expect("open service");
    for (a, name) in ATTR_NAMES.iter().enumerate() {
        catalog
            .define_attribute(&admin, name, ATTR_TYPES[a], "evaluation workload attribute")
            .expect("define attribute");
    }
    let created = Value::DateTime(spec::load_timestamp());
    let n_colls = n_files.div_ceil(FILES_PER_COLLECTION).max(1);

    std::thread::scope(|s| {
        for k in 0..shards {
            let catalog = Arc::clone(&catalog);
            let created = created.clone();
            s.spawn(move || {
                let db = catalog.shard(k).database();
                // Collections are global state: identical rows — and
                // therefore identical ids — on every shard, exactly the
                // mirror the router maintains after each global write.
                insert_collections(db, n_colls, &created);
                // Per-file state lives only on the owning shard. Local
                // file ids auto-increment from 1 in insertion order.
                let owned = (0..n_files).filter(|i| {
                    mcs::shard_of_name(&spec::file_name(*i), shards) == k
                });
                insert_files(db, owned.clone(), &created);
                let file_attrs =
                    owned.enumerate().map(|(local, i)| (0i64, local as i64 + 1, i));
                if k == 0 {
                    // Collection attributes are global state on shard 0.
                    insert_attributes(
                        db,
                        file_attrs.chain((0..n_colls).map(|c| (1i64, c as i64 + 1, c))),
                    );
                } else {
                    insert_attributes(db, file_attrs);
                }
            });
        }
    });

    BuiltShardedCatalog { catalog, admin, n_files }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs::AttrPredicate;

    #[test]
    fn loads_expected_counts() {
        let built = build_catalog(2_500, IndexProfile::Paper2003);
        assert_eq!(built.mcs.file_count().unwrap(), 2_500);
        // 3 collections (1000+1000+500)
        let db = built.mcs.database();
        assert_eq!(db.table("logical_collections").unwrap().read().len(), 3);
        // 2500 files × 10 + 3 collections × 10 attributes
        assert_eq!(db.table("user_attributes").unwrap().read().len(), 25_030);
    }

    #[test]
    fn loaded_files_are_queryable_through_the_service() {
        let built = build_catalog(1_200, IndexProfile::Paper2003);
        let cred = Credential::new("/CN=anyone-at-all");
        // simple query
        let f = built.mcs.get_file(&cred, &spec::file_name(1_111)).unwrap();
        assert_eq!(f.collection_id, Some(2));
        // complex query for one file's attributes finds exactly it
        let hits = built.mcs.query_by_attributes(&cred, &spec::complex_query(777, 10)).unwrap();
        assert_eq!(hits, vec![(spec::file_name(777), 1)]);
        // collection listing
        let contents = built.mcs.list_collection(&cred, &spec::collection_name(1)).unwrap();
        assert_eq!(contents.files.len(), 200); // files 1000..1199
        // collection attributes exist
        let attrs = built
            .mcs
            .get_attributes(&cred, &mcs::ObjectRef::Collection(spec::collection_name(0)))
            .unwrap();
        assert_eq!(attrs.len(), 10);
    }

    #[test]
    fn partial_complex_queries_widen() {
        let built = build_catalog(2_000, IndexProfile::Paper2003);
        let cred = Credential::new("/CN=u");
        let narrow = built.mcs.query_by_attributes(&cred, &spec::complex_query(42, 10)).unwrap();
        let wide = built.mcs.query_by_attributes(&cred, &spec::complex_query(42, 1)).unwrap();
        assert_eq!(narrow.len(), 1);
        assert!(wide.len() > narrow.len());
        assert!(wide.contains(&(spec::file_name(42), 1)));
        let preds: Vec<AttrPredicate> = spec::complex_query(42, 10);
        assert_eq!(preds.len(), 10);
    }

    /// The sharded loader must answer exactly like the single-shard one.
    #[test]
    fn sharded_load_matches_single_shard_answers() {
        let single = build_sharded_catalog(2_500, IndexProfile::Paper2003, 1, None);
        let sharded = build_sharded_catalog(2_500, IndexProfile::Paper2003, 4, None);
        let cred = Credential::new("/CN=anyone-at-all");
        assert_eq!(single.catalog.file_count().unwrap(), 2_500);
        assert_eq!(sharded.catalog.file_count().unwrap(), 2_500);
        for i in [0u64, 777, 2_499] {
            let q = spec::complex_query(i, 10);
            assert_eq!(
                single.catalog.query_by_attributes(&cred, &q).unwrap(),
                sharded.catalog.query_by_attributes(&cred, &q).unwrap(),
            );
        }
        let wide = spec::complex_query(42, 1);
        assert_eq!(
            single.catalog.query_by_attributes(&cred, &wide).unwrap(),
            sharded.catalog.query_by_attributes(&cred, &wide).unwrap(),
        );
        for c in [0u64, 2] {
            assert_eq!(
                single.catalog.list_collection(&cred, &spec::collection_name(c)).unwrap(),
                sharded.catalog.list_collection(&cred, &spec::collection_name(c)).unwrap(),
            );
        }
        // collection attributes live on shard 0 and resolve globally
        assert_eq!(
            sharded
                .catalog
                .get_attributes(&cred, &mcs::ObjectRef::Collection(spec::collection_name(0)))
                .unwrap()
                .len(),
            10
        );
    }
}
