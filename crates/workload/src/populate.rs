//! Bulk catalog population.
//!
//! The paper loaded databases of 100 k / 1 M / 5 M logical files before
//! measuring. Loading through the per-file service API would dominate
//! setup time, so — like any production catalog deployment — we provide a
//! bulk loader that writes the same rows through the storage engine with
//! batched multi-row prepared inserts. The resulting database is
//! byte-for-byte what the per-file API would have produced (asserted by
//! `tests/populate_equiv.rs`).

use std::sync::Arc;

use mcs::{Credential, IndexProfile, ManualClock, Mcs};
use relstore::Value;

use crate::spec::{self, ATTR_NAMES, ATTR_TYPES, FILES_PER_COLLECTION};

/// A populated catalog ready for the evaluation drivers.
pub struct BuiltCatalog {
    /// The catalog.
    pub mcs: Arc<Mcs>,
    /// Superuser credential.
    pub admin: Credential,
    /// Number of logical files loaded.
    pub n_files: u64,
}

/// DN of the bulk loader / superuser.
pub const ADMIN_DN: &str = "/O=Grid/OU=ISI/CN=mcs-admin";

fn typed_null_row(name: &str, a: usize, v: Value) -> [Value; 8] {
    // columns: name, attr_type, str, int, float, date, time, datetime
    let mut row: [Value; 8] = [
        name.into(),
        ATTR_TYPES[a].code().into(),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
    ];
    let col = match ATTR_TYPES[a] {
        mcs::AttrType::Str => 2,
        mcs::AttrType::Int => 3,
        mcs::AttrType::Float => 4,
        mcs::AttrType::Date => 5,
        mcs::AttrType::Time => 6,
        mcs::AttrType::DateTime => 7,
    };
    row[col] = v;
    row
}

/// Build and load a catalog with `n_files` logical files per the paper's
/// workload (§7): collections of 1000 files, ten typed attributes per
/// file and per collection, service opened to everyone.
pub fn build_catalog(n_files: u64, profile: IndexProfile) -> BuiltCatalog {
    build_catalog_with(n_files, profile, None)
}

/// [`build_catalog`] with an optional read cache (DESIGN.md §7.3) — the
/// fig14 A/B builds one cached catalog and measures it with and without
/// the per-request bypass.
pub fn build_catalog_with(
    n_files: u64,
    profile: IndexProfile,
    cache: Option<mcs::CacheConfig>,
) -> BuiltCatalog {
    let admin = Credential::new(ADMIN_DN);
    let clock = Arc::new(ManualClock::default());
    let mcs = Arc::new(match cache {
        Some(c) => Mcs::with_options_cached(&admin, profile, clock, c).expect("bootstrap"),
        None => Mcs::with_options(&admin, profile, clock).expect("bootstrap"),
    });
    mcs.allow_anyone(&admin).expect("open service");
    for (a, name) in ATTR_NAMES.iter().enumerate() {
        mcs.define_attribute(&admin, name, ATTR_TYPES[a], "evaluation workload attribute")
            .expect("define attribute");
    }
    let db = mcs.database();
    let created = Value::DateTime(spec::load_timestamp());

    // --- collections ---
    let n_colls = n_files.div_ceil(FILES_PER_COLLECTION).max(1);
    {
        let batch = 500usize;
        let one = "(?, ?, ?)";
        let sql_batch = format!(
            "INSERT INTO logical_collections (name, creator, created) VALUES {}",
            vec![one; batch].join(", ")
        );
        let prepared = db.prepare(&sql_batch).expect("prepare");
        let single = db
            .prepare("INSERT INTO logical_collections (name, creator, created) VALUES (?, ?, ?)")
            .expect("prepare");
        let mut params: Vec<Value> = Vec::with_capacity(batch * 3);
        let mut in_batch = 0usize;
        for c in 0..n_colls {
            params.push(spec::collection_name(c).into());
            params.push(ADMIN_DN.into());
            params.push(created.clone());
            in_batch += 1;
            if in_batch == batch {
                db.execute_prepared(&prepared, &params).expect("insert collections");
                params.clear();
                in_batch = 0;
            }
        }
        for chunk in params.chunks(3) {
            db.execute_prepared(&single, chunk).expect("insert collection");
        }
    }

    // --- files ---
    {
        let batch = 500usize;
        let one = "(?, ?, ?, ?)";
        let sql_batch = format!(
            "INSERT INTO logical_files (name, collection_id, creator, created) VALUES {}",
            vec![one; batch].join(", ")
        );
        let prepared = db.prepare(&sql_batch).expect("prepare");
        let single = db
            .prepare(
                "INSERT INTO logical_files (name, collection_id, creator, created) \
                 VALUES (?, ?, ?, ?)",
            )
            .expect("prepare");
        let mut params: Vec<Value> = Vec::with_capacity(batch * 4);
        let mut in_batch = 0usize;
        for i in 0..n_files {
            params.push(spec::file_name(i).into());
            // collections auto-increment from 1 in creation order
            params.push(Value::Int(spec::collection_of(i) as i64 + 1));
            params.push(ADMIN_DN.into());
            params.push(created.clone());
            in_batch += 1;
            if in_batch == batch {
                db.execute_prepared(&prepared, &params).expect("insert files");
                params.clear();
                in_batch = 0;
            }
        }
        for chunk in params.chunks(4) {
            db.execute_prepared(&single, chunk).expect("insert file");
        }
    }

    // --- attributes: ten per file and ten per collection ---
    {
        let batch = 100usize; // 100 × 10 attrs × 10 cols = 10k params
        let one = "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)";
        let cols = "object_type, object_id, name, attr_type, str_value, int_value, \
                    float_value, date_value, time_value, datetime_value";
        let sql_batch = format!(
            "INSERT INTO user_attributes ({cols}) VALUES {}",
            vec![one; batch * 10].join(", ")
        );
        let prepared = db.prepare(&sql_batch).expect("prepare");
        let sql_one = format!("INSERT INTO user_attributes ({cols}) VALUES {one}");
        let single = db.prepare(&sql_one).expect("prepare");
        let mut params: Vec<Value> = Vec::with_capacity(batch * 100);
        let mut in_batch = 0usize;
        let push_object = |params: &mut Vec<Value>,
                               in_batch: &mut usize,
                               object_type: i64,
                               object_id: i64,
                               idx: u64| {
            for a in 0..10usize {
                params.push(Value::Int(object_type));
                params.push(Value::Int(object_id));
                let row = typed_null_row(ATTR_NAMES[a], a, spec::attr_value(a, idx));
                params.extend(row);
            }
            *in_batch += 1;
            if *in_batch == batch {
                db.execute_prepared(&prepared, params).expect("insert attributes");
                params.clear();
                *in_batch = 0;
            }
        };
        for i in 0..n_files {
            // files auto-increment from 1 in creation order
            push_object(&mut params, &mut in_batch, 0, i as i64 + 1, i);
        }
        for c in 0..n_colls {
            push_object(&mut params, &mut in_batch, 1, c as i64 + 1, c);
        }
        for chunk in params.chunks(10) {
            db.execute_prepared(&single, chunk).expect("insert attribute");
        }
    }

    BuiltCatalog { mcs, admin, n_files }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs::AttrPredicate;

    #[test]
    fn loads_expected_counts() {
        let built = build_catalog(2_500, IndexProfile::Paper2003);
        assert_eq!(built.mcs.file_count().unwrap(), 2_500);
        // 3 collections (1000+1000+500)
        let db = built.mcs.database();
        assert_eq!(db.table("logical_collections").unwrap().read().len(), 3);
        // 2500 files × 10 + 3 collections × 10 attributes
        assert_eq!(db.table("user_attributes").unwrap().read().len(), 25_030);
    }

    #[test]
    fn loaded_files_are_queryable_through_the_service() {
        let built = build_catalog(1_200, IndexProfile::Paper2003);
        let cred = Credential::new("/CN=anyone-at-all");
        // simple query
        let f = built.mcs.get_file(&cred, &spec::file_name(1_111)).unwrap();
        assert_eq!(f.collection_id, Some(2));
        // complex query for one file's attributes finds exactly it
        let hits = built.mcs.query_by_attributes(&cred, &spec::complex_query(777, 10)).unwrap();
        assert_eq!(hits, vec![(spec::file_name(777), 1)]);
        // collection listing
        let contents = built.mcs.list_collection(&cred, &spec::collection_name(1)).unwrap();
        assert_eq!(contents.files.len(), 200); // files 1000..1199
        // collection attributes exist
        let attrs = built
            .mcs
            .get_attributes(&cred, &mcs::ObjectRef::Collection(spec::collection_name(0)))
            .unwrap();
        assert_eq!(attrs.len(), 10);
    }

    #[test]
    fn partial_complex_queries_widen() {
        let built = build_catalog(2_000, IndexProfile::Paper2003);
        let cred = Credential::new("/CN=u");
        let narrow = built.mcs.query_by_attributes(&cred, &spec::complex_query(42, 10)).unwrap();
        let wide = built.mcs.query_by_attributes(&cred, &spec::complex_query(42, 1)).unwrap();
        assert_eq!(narrow.len(), 1);
        assert!(wide.len() > narrow.len());
        assert!(wide.contains(&(spec::file_name(42), 1)));
        let preds: Vec<AttrPredicate> = spec::complex_query(42, 10);
        assert_eq!(preds.len(), 10);
    }
}
