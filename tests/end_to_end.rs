//! Cross-crate integration tests: the complete Grid stack wired together
//! the way the paper deploys it.

use std::sync::Arc;

use gridftp::{transfer, Endpoint, GridFtpServer, TransferOptions};
use mcs::{
    AttrPredicate, AttrType, Credential, FileSpec, IndexProfile, ManualClock, Mcs, ObjectRef,
};
use mcs_net::{McsClient, McsServer};
use rls::{Digest, LocalReplicaCatalog, ReplicaLocationIndex};

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn fresh_catalog() -> Arc<Mcs> {
    Arc::new(
        Mcs::with_options(&admin(), IndexProfile::Paper2003, Arc::new(ManualClock::default()))
            .unwrap(),
    )
}

/// The Figure-2 pipeline: MCS (over SOAP) → RLS → GridFTP, asserting the
/// data actually lands.
#[test]
fn figure2_discovery_and_access() {
    let catalog = fresh_catalog();
    let server = McsServer::start(Arc::clone(&catalog), "127.0.0.1:0", 2).unwrap();
    let mut client = McsClient::connect(server.addr().to_string(), admin());

    client.define_attribute("experiment", AttrType::Str, "").unwrap();
    let lrc = LocalReplicaCatalog::new("site-a");
    let rli = ReplicaLocationIndex::new(300);
    let storage = GridFtpServer::new("site-a", Endpoint::lan());
    let desktop = GridFtpServer::new("desktop", Endpoint::lan());

    for i in 0..5 {
        let lfn = format!("evt-{i:03}.dat");
        client.create_file(&FileSpec::named(&lfn).attr("experiment", "cms")).unwrap();
        storage.put(&format!("/data/{lfn}"), 1 << 20).unwrap();
        lrc.add(&lfn, &storage.url(&format!("/data/{lfn}"))).unwrap();
    }
    rli.update(Digest::build(lrc.id(), &lrc.lfns(), 0, 0.001), 0);

    let hits = client.query_by_attributes(&[AttrPredicate::eq("experiment", "cms")]).unwrap();
    assert_eq!(hits.len(), 5);
    for (lfn, _) in hits {
        assert_eq!(rli.query(&lfn, 1), vec!["site-a"]);
        let pfns = lrc.lookup(&lfn);
        assert_eq!(pfns.len(), 1);
        let report = transfer(
            &storage,
            &format!("/data/{lfn}"),
            &desktop,
            &format!("/scratch/{lfn}"),
            TransferOptions::default(),
        )
        .unwrap();
        assert_eq!(report.bytes, 1 << 20);
    }
    assert_eq!(desktop.file_count(), 5);
}

/// Deleting metadata in the MCS and replicas in the RLS keeps the two
/// catalogs consistent for the discovery pipeline.
#[test]
fn metadata_and_replica_lifecycle_stay_consistent() {
    let catalog = fresh_catalog();
    let a = admin();
    catalog.define_attribute(&a, "kind", AttrType::Str, "").unwrap();
    let lrc = LocalReplicaCatalog::new("site");
    catalog.create_file(&a, &FileSpec::named("f").attr("kind", "raw")).unwrap();
    lrc.add("f", "gsiftp://site/f").unwrap();

    // retire the data: metadata first, then replicas (the paper's layered
    // factoring means neither service knows about the other's rows)
    catalog.delete_file(&a, "f").unwrap();
    lrc.remove("f", "gsiftp://site/f").unwrap();
    assert!(catalog.query_by_attributes(&a, &[AttrPredicate::eq("kind", "raw")]).unwrap().is_empty());
    assert!(lrc.lookup("f").is_empty());
}

/// The bulk loader must be observationally equivalent to the public API
/// (documented contract of `workload::populate`).
#[test]
fn bulk_loader_equivalent_to_api_loading() {
    use workload::spec;
    let n = 300u64;
    // catalog A: bulk loaded
    let bulk = workload::build_catalog(n, IndexProfile::Paper2003);
    // catalog B: loaded through the public API with identical content
    let a = admin();
    let api = Mcs::with_options(&a, IndexProfile::Paper2003, Arc::new(ManualClock::default()))
        .unwrap();
    api.allow_anyone(&a).unwrap();
    for (i, name) in spec::ATTR_NAMES.iter().enumerate() {
        api.define_attribute(&a, name, spec::ATTR_TYPES[i], "").unwrap();
    }
    api.create_collection(&a, &spec::collection_name(0), None, "").unwrap();
    for i in 0..n {
        let mut s = FileSpec::named(spec::file_name(i)).in_collection(&spec::collection_name(0));
        s.attributes = spec::attributes_of(i);
        api.create_file(&a, &s).unwrap();
    }

    let user = Credential::new("/CN=user");
    for i in [0u64, 17, 299] {
        // same simple-query results
        let fa = bulk.mcs.get_file(&user, &spec::file_name(i)).unwrap();
        let fb = api.get_file(&user, &spec::file_name(i)).unwrap();
        assert_eq!(fa.name, fb.name);
        assert_eq!(fa.version, fb.version);
        assert_eq!(fa.valid, fb.valid);
        // same attributes
        let aa = bulk.mcs.get_attributes(&user, &ObjectRef::File(fa.name.clone())).unwrap();
        let ab = api.get_attributes(&user, &ObjectRef::File(fb.name.clone())).unwrap();
        assert_eq!(aa, ab);
        // same complex-query results
        let qa = bulk.mcs.query_by_attributes(&user, &spec::complex_query(i, 10)).unwrap();
        let qb = api.query_by_attributes(&user, &spec::complex_query(i, 10)).unwrap();
        assert_eq!(qa, qb);
    }
}

/// Both index profiles, exercised through the SOAP stack, agree on query
/// results.
#[test]
fn profiles_agree_over_the_wire() {
    use workload::spec;
    let n = 400u64;
    let p1 = workload::build_catalog(n, IndexProfile::Paper2003);
    let p2 = workload::build_catalog(n, IndexProfile::ValueIndexed);
    let s1 = McsServer::start(Arc::clone(&p1.mcs), "127.0.0.1:0", 2).unwrap();
    let s2 = McsServer::start(Arc::clone(&p2.mcs), "127.0.0.1:0", 2).unwrap();
    let mut c1 = McsClient::connect(s1.addr().to_string(), admin());
    let mut c2 = McsClient::connect(s2.addr().to_string(), admin());
    for i in [3u64, 111, 399] {
        for k in [1usize, 3, 10] {
            let q = spec::complex_query(i, k);
            assert_eq!(
                c1.query_by_attributes(&q).unwrap(),
                c2.query_by_attributes(&q).unwrap(),
                "disagreement at file {i}, {k} attrs"
            );
        }
    }
}

/// Add/delete churn under concurrency leaves the catalog exactly as
/// populated (the paper's size-preserving add workload).
#[test]
fn concurrent_add_delete_churn_preserves_size() {
    let built = workload::build_catalog(500, IndexProfile::Paper2003);
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let mcs = Arc::clone(&built.mcs);
            std::thread::spawn(move || {
                let cred = workload::driver_credential(0, t);
                for c in 0..30u64 {
                    let mut s = FileSpec::named(format!("churn.t{t}.{c}"));
                    s.attributes = workload::spec::attributes_of(500 + c);
                    mcs.create_file(&cred, &s).unwrap();
                    mcs.delete_file(&cred, &s.name).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(built.mcs.file_count().unwrap(), 500);
    // attribute table back to its loaded size: 500 files × 10 + 1 coll × 10
    let db = built.mcs.database();
    assert_eq!(db.table("user_attributes").unwrap().read().len(), 5_010);
}

/// Readers run concurrently with add/delete writers without errors
/// (table-level reader-writer locking, the MyISAM model).
#[test]
fn readers_and_writers_coexist() {
    let built = workload::build_catalog(400, IndexProfile::Paper2003);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let mcs = Arc::clone(&built.mcs);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let cred = workload::driver_credential(9, 9);
            let mut c = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                c += 1;
                let mut s = FileSpec::named(format!("w.{c}"));
                s.attributes = workload::spec::attributes_of(c);
                mcs.create_file(&cred, &s).unwrap();
                mcs.delete_file(&cred, &s.name).unwrap();
            }
        })
    };
    let cred = Credential::new("/CN=reader");
    for i in 0..200u64 {
        let f = built.mcs.get_file(&cred, &workload::spec::file_name(i % 400)).unwrap();
        assert!(f.valid);
        if i % 20 == 0 {
            let hits = built
                .mcs
                .query_by_attributes(&cred, &workload::spec::complex_query(i % 400, 10))
                .unwrap();
            assert!(hits.iter().any(|(n, _)| *n == workload::spec::file_name(i % 400)));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

/// The full SOAP path (client → soapstack → mcs → relstore) with group
/// commit enabled: two durable catalogs receive identical traffic from
/// concurrent SOAP clients, one under `Durability::Always`, one under
/// `Durability::Group` — every query must agree, the grouped catalog must
/// pay fewer syncs for the same committed work, and a reopen must recover
/// the grouped catalog byte-for-byte.
#[test]
fn soap_path_agrees_under_always_and_group_durability() {
    use mcs::StoreConfig;
    use std::time::Duration;

    let mk_dir = |tag: &str| {
        let d = std::env::temp_dir().join(format!("e2e-gc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    let dir_always = mk_dir("always");
    let dir_group = mk_dir("group");
    let configs = [
        (&dir_always, StoreConfig::default()),
        (&dir_group, StoreConfig::grouped(Duration::from_millis(2), 64)),
    ];

    let mut results = Vec::new();
    let mut syncs = Vec::new();
    for (dir, cfg) in configs {
        let catalog = Arc::new(
            Mcs::open_durable(
                dir,
                &admin(),
                IndexProfile::Paper2003,
                Arc::new(ManualClock::default()),
                cfg,
            )
            .unwrap(),
        );
        let mut server = McsServer::start(Arc::clone(&catalog), "127.0.0.1:0", 4).unwrap();
        let addr = server.addr().to_string();

        let mut setup = McsClient::connect(addr.clone(), admin());
        setup.define_attribute("experiment", AttrType::Str, "").unwrap();
        setup.define_attribute("run", AttrType::Int, "").unwrap();

        let syncs_before = catalog.database().wal_stats().sync_count();
        // 4 concurrent SOAP clients × 25 files each; create_file is a
        // multi-statement transaction, so these commits ride the queue
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut c = McsClient::connect(addr, admin());
                    for i in 0..25 {
                        let spec = FileSpec::named(format!("evt-{w}-{i:02}.dat"))
                            .attr("experiment", "ligo")
                            .attr("run", (w * 100 + i) as i64);
                        c.create_file(&spec).unwrap();
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        syncs.push(catalog.database().wal_stats().sync_count() - syncs_before);

        let mut hits =
            setup.query_by_attributes(&[AttrPredicate::eq("experiment", "ligo")]).unwrap();
        hits.sort();
        assert_eq!(hits.len(), 100);
        let attrs = setup.get_attributes(&ObjectRef::File("evt-2-13.dat".into())).unwrap();
        results.push((hits, attrs));
        server.stop();
    }
    assert_eq!(results[0], results[1], "Always and Group must agree over SOAP");
    assert!(
        syncs[1] < syncs[0],
        "group commit must sync less for the same work: Always={} Group={}",
        syncs[0],
        syncs[1]
    );

    // crash/restart the grouped catalog: recovery must keep all 100 files
    let reopened = Mcs::open_durable(
        &dir_group,
        &admin(),
        IndexProfile::Paper2003,
        Arc::new(ManualClock::default()),
        StoreConfig::default(),
    )
    .unwrap();
    let hits = reopened
        .query_by_attributes(&admin(), &[AttrPredicate::eq("experiment", "ligo")])
        .unwrap();
    assert_eq!(hits.len(), 100, "reopen lost group-committed files");
    std::fs::remove_dir_all(&dir_always).ok();
    std::fs::remove_dir_all(&dir_group).ok();
}

/// MCS container attributes point at a real container service (paper
/// §3/§5): small data objects are grouped for efficient storage, the
/// catalog records only (container_id, container_service), and access
/// goes catalog → container service → storage.
#[test]
fn container_service_integration() {
    use gridftp::ContainerService;

    let catalog = fresh_catalog();
    let a = admin();
    let storage = Arc::new(GridFtpServer::new("hpss", Endpoint::lan()));
    let containers = ContainerService::new("http://containers.hpss", Arc::clone(&storage));

    // publication: pack 20 small files into one container, register each
    // in the MCS with its container pointer
    let cid = containers.create_container();
    for i in 0..20 {
        let lfn = format!("smallfile-{i:02}.dat");
        containers.add_item(&cid, &lfn, 4096).unwrap();
        catalog
            .create_file(
                &a,
                &FileSpec {
                    container_id: Some(cid.clone()),
                    container_service: Some(containers.locator.clone()),
                    ..FileSpec::named(&lfn)
                },
            )
            .unwrap();
    }
    containers.seal(&cid).unwrap();

    // access: resolve the container pointer from the catalog, extract
    let f = catalog.get_file(&a, "smallfile-07.dat").unwrap();
    assert_eq!(f.container_service.as_deref(), Some("http://containers.hpss"));
    let cid_from_catalog = f.container_id.unwrap();
    let size = containers
        .extract(&cid_from_catalog, &f.name, &format!("/scratch/{}", f.name))
        .unwrap();
    assert_eq!(size, 4096);
    assert_eq!(storage.size_of("/scratch/smallfile-07.dat"), Some(4096));
    // the container itself is one aggregate object on storage
    assert_eq!(storage.size_of(&format!("/containers/{cid_from_catalog}.tar")), Some(20 * 4096));
}
