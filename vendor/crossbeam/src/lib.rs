//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender}` as a
//! multi-producer multi-consumer job queue for the soapstack thread pool, so
//! that is all this vendored crate provides. The implementation is a
//! `Mutex<VecDeque>` + `Condvar` — not lock-free, but correct, and the queue
//! is nowhere near the hot path (one send/recv per HTTP connection).

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // wake blocked receivers so they observe disconnection
                self.shared.ready.notify_all();
            }
        }
    }

    /// The receiving half of a channel. `recv` may be called from many
    /// threads sharing one `Receiver` (e.g. through an `Arc`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, blocking while the channel is empty. Returns
        /// `Err(RecvError)` once the channel is empty and all senders are
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Dequeues a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared.inner.lock().unwrap().queue.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_wakes_all_consumers() {
        let (tx, rx) = unbounded::<u32>();
        let rx = Arc::new(rx);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while let Ok(v) = rx.recv() {
                        n += v;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..100 {
            tx.send(1).unwrap();
        }
        drop(tx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
