//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter` — with a simple
//! wall-clock measurement loop: warm up, then time batches until the
//! measurement window elapses, and report mean ns/iter to stdout. No
//! statistical analysis, plots, or saved baselines.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter (the group name prefixes it).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Top-level benchmark harness configuration.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(300), measurement: Duration::from_secs(2) }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().0;
        run_one(&label, self.warm_up, self.measurement, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in measures a fixed
    /// wall-clock window rather than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.criterion.warm_up, self.criterion.measurement, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.criterion.warm_up, self.criterion.measurement, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; results are printed as they complete).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine`, recording total iterations and wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run without recording.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Measure in growing batches to amortize clock reads.
        let mut batch = 1u64;
        let begin = Instant::now();
        while begin.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += t0.elapsed();
            self.iters += batch;
            batch = (batch * 2).min(1024);
        }
    }
}

fn run_one(label: &str, warm_up: Duration, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { warm_up, measurement, iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<40} (no iterations recorded)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let per_sec = 1e9 / ns;
    println!("{label:<40} {ns:>12.0} ns/iter ({per_sec:>10.0} ops/s, {} iters)", b.iters);
}

/// Declares a benchmark-group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("smoke");
        let mut count = 0u64;
        g.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
