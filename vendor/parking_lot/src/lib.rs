//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses:
//! `Mutex`/`RwLock` whose lock methods return guards directly (no poisoning).
//! Poisoned std locks are recovered transparently — a panic while holding a
//! lock must not wedge every later caller, matching parking_lot semantics.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
