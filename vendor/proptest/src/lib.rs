//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API that the workspace's property
//! tests use: the `proptest!` macro, `Strategy` combinators (`prop_map`,
//! `prop_filter`, `prop_recursive`, tuples, ranges, regex-literal string
//! strategies), `prop_oneof!`, `any::<T>()`, `prop::collection::vec`,
//! `proptest::option::of`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its deterministic seed; rerun
//!   reproduces it exactly (cases are seeded from the test name + index).
//! * **Regex strategies** support the subset used in-tree: literal chars,
//!   character classes (`[a-z0-9_-]`, `[ -~]`), `\PC`, groups, `?`, and
//!   `{m,n}` repetition.
//! * `.proptest-regressions` files are ignored.

pub mod test_runner {
    //! Deterministic case runner and its configuration.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the in-tree suites
            // (which hit a full storage engine per case) fast.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the property is violated.
        Fail(String),
        /// The inputs were rejected by `prop_assume!` — try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered-out) input.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic splitmix64 stream used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9e3779b97f4a7c15 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Runs the cases of one property function.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `f` until `config.cases` cases pass. Panics on the first
        /// `Fail`, reporting the case seed so the failure is reproducible.
        pub fn run_named<F>(&mut self, name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = fnv1a(name.as_bytes());
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let mut attempt = 0u64;
            while passed < self.config.cases {
                let seed = base ^ attempt.wrapping_mul(0x2545f4914f6cdd1d);
                let mut rng = TestRng::new(seed);
                match f(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > 256 * self.config.cases as u64 {
                            panic!(
                                "proptest '{name}': too many prop_assume! rejections \
                                 ({rejected} rejects for {passed} passes)"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{name}' failed at case {passed} \
                             (attempt {attempt}, seed {seed:#x}):\n{msg}"
                        );
                    }
                }
                attempt += 1;
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::string::generate_from_regex;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map: f }
        }

        /// Discards generated values failing `pred` (resampling, bounded).
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, pred, reason: reason.into() }
        }

        /// Builds a recursive strategy: `recurse` receives the strategy for
        /// the next level down and returns the strategy for one level up.
        /// `depth` bounds the nesting.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut level: BoxedStrategy<Self::Value> = Box::new(self);
            for _ in 0..depth {
                level = Box::new(recurse(level));
            }
            level
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        pred: F,
        reason: String,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive values: {}", self.reason)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// String-literal regex strategies: `"[a-z]{1,8}"` is a `Strategy`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_regex(self, rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix raw bit patterns (extreme magnitudes, infinities, NaN)
            // with tame values so both regimes are exercised.
            if rng.next_u64() & 1 == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                (rng.next_u64() as i64 as f64) / 1e6
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size.into()` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some ~75% of the time, like real proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` sometimes, `Some(value from strategy)` otherwise.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy { inner: strategy }
    }
}

pub mod string {
    //! Generation of strings matching the supported regex subset.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        /// Inclusive char ranges, sampled weighted by width.
        Class(Vec<(char, char)>),
        /// A small pool of multi-byte chars mixed into `\PC`.
        Printable,
        Group(Vec<(Atom, Rep)>),
    }

    #[derive(Debug, Clone, Copy)]
    struct Rep {
        min: u32,
        max: u32, // inclusive
    }

    const ONE: Rep = Rep { min: 1, max: 1 };

    /// Generates a string matching `pattern`. Panics on syntax outside the
    /// supported subset — that is a bug in the calling test, not an input
    /// condition.
    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let seq = parse_seq(&mut pattern.chars().peekable(), None, pattern);
        let mut out = String::new();
        emit_seq(&seq, rng, &mut out);
        out
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        terminator: Option<char>,
        pattern: &str,
    ) -> Vec<(Atom, Rep)> {
        let mut seq = Vec::new();
        loop {
            let c = match chars.next() {
                Some(c) if Some(c) == terminator => return seq,
                Some(c) => c,
                None if terminator.is_none() => return seq,
                None => panic!("unterminated group in regex strategy {pattern:?}"),
            };
            let atom = match c {
                '[' => parse_class(chars, pattern),
                '(' => Atom::Group(parse_seq(chars, Some(')'), pattern)),
                '\\' => match chars.next() {
                    Some('P') | Some('p') => {
                        // only \PC ("not control") is used in-tree
                        let class = chars.next();
                        assert_eq!(class, Some('C'), "unsupported \\P class in {pattern:?}");
                        Atom::Printable
                    }
                    Some('d') => Atom::Class(vec![('0', '9')]),
                    Some('w') => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    Some(lit) => Atom::Literal(lit),
                    None => panic!("dangling escape in regex strategy {pattern:?}"),
                },
                other => Atom::Literal(other),
            };
            let rep = parse_rep(chars, pattern);
            seq.push((atom, rep));
        }
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Atom {
        let mut ranges = Vec::new();
        loop {
            let c = match chars.next() {
                Some(']') => break,
                Some(c) => c,
                None => panic!("unterminated character class in regex strategy {pattern:?}"),
            };
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next(); // the '-'
                match ahead.peek() {
                    Some(&']') | None => ranges.push((c, c)), // trailing literal '-'
                    Some(_) => {
                        chars.next();
                        let hi = chars.next().unwrap();
                        assert!(c <= hi, "inverted range in class of {pattern:?}");
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        assert!(!ranges.is_empty(), "empty character class in regex strategy {pattern:?}");
        Atom::Class(ranges)
    }

    fn parse_rep(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Rep {
        match chars.peek() {
            Some('?') => {
                chars.next();
                Rep { min: 0, max: 1 }
            }
            Some('*') => {
                chars.next();
                Rep { min: 0, max: 8 }
            }
            Some('+') => {
                chars.next();
                Rep { min: 1, max: 8 }
            }
            Some('{') => {
                chars.next();
                let mut min = String::new();
                let mut max = String::new();
                let mut in_max = false;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => in_max = true,
                        Some(d) if d.is_ascii_digit() => {
                            if in_max { max.push(d) } else { min.push(d) }
                        }
                        other => panic!("bad repetition {other:?} in regex strategy {pattern:?}"),
                    }
                }
                let min: u32 = min.parse().expect("repetition lower bound");
                let max: u32 = if in_max {
                    max.parse().expect("repetition upper bound")
                } else {
                    min
                };
                assert!(min <= max, "inverted repetition in regex strategy {pattern:?}");
                Rep { min, max }
            }
            _ => ONE,
        }
    }

    fn emit_seq(seq: &[(Atom, Rep)], rng: &mut TestRng, out: &mut String) {
        for (atom, rep) in seq {
            let n = rep.min + rng.below((rep.max - rep.min + 1) as u64) as u32;
            for _ in 0..n {
                emit_atom(atom, rng, out);
            }
        }
    }

    fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
        match atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Class(ranges) => {
                let total: u64 = ranges.iter().map(|(lo, hi)| width(*lo, *hi)).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let w = width(*lo, *hi);
                    if pick < w {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                        return;
                    }
                    pick -= w;
                }
                unreachable!()
            }
            Atom::Printable => {
                // \PC: any non-control char. Mostly printable ASCII with a
                // sprinkle of multi-byte chars to exercise UTF-8 paths.
                const EXOTIC: [char; 6] = ['\u{e9}', '\u{df}', '\u{3b1}', '\u{2192}', '\u{4e2d}', '\u{1F600}'];
                if rng.below(10) == 0 {
                    out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                } else {
                    out.push(char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap());
                }
            }
            Atom::Group(seq) => emit_seq(seq, rng, out),
        }
    }

    fn width(lo: char, hi: char) -> u64 {
        (hi as u32 - lo as u32 + 1) as u64
    }
}

/// Runs each `fn name(arg in strategy, ...) { body }` as a `#[test]` over
/// many generated cases. Supports an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::new($cfg);
                __runner.run_named(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    __outcome
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the reproduction seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            )));
        }
    }};
}

/// Rejects the current generated case (resampled, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` resolves after a glob import.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn regex_class_and_rep(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn group_optional(s in "x(:[0-9])?") {
            prop_assert!(s == "x" || (s.len() == 3 && s.starts_with("x:")));
        }

        #[test]
        fn ranges_and_tuples((a, b) in (0i64..10, 5u32..6)) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b, 5);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(0usize), (1usize..4).prop_map(|x| x * 10)]) {
            prop_assert!(v == 0 || v == 10 || v == 20 || v == 30);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }
    }

    #[test]
    fn printable_never_emits_controls() {
        let mut rng = TestRng::new(99);
        for _ in 0..200 {
            let s = crate::string::generate_from_regex("\\PC{0,16}", &mut rng);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        assert_eq!(
            crate::string::generate_from_regex("[a-z]{8}", &mut a),
            crate::string::generate_from_regex("[a-z]{8}", &mut b),
        );
    }
}
