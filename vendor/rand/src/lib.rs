//! Offline stand-in for the `rand` crate.
//!
//! Provides deterministic pseudo-random generation for the workload driver
//! and benches: `rngs::SmallRng` seeded via `SeedableRng::seed_from_u64`,
//! and `Rng::gen_range` over the integer range types the workspace uses.
//! The generator is splitmix64 — statistically fine for workload shuffling,
//! not for cryptography.

use std::ops::Range;

/// Core random-number generation: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange {
    /// The value type produced by the range.
    type Output;
    /// Samples one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free (modulo-bias-free via Lemire-style widening) uniform
/// sampling of `n` values in `[0, n)`. `n` must be non-zero.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty sample range");
    // 128-bit multiply-shift: maps a uniform u64 onto [0, n) with
    // negligible bias for the workload sizes involved.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an RNG from ambient entropy (here: the system clock —
    /// deterministic seeding via `seed_from_u64` is strongly preferred).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast non-cryptographic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
